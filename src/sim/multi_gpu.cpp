#include "sim/multi_gpu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/blas3.hpp"
#include "la/cholesky.hpp"
#include "la/householder.hpp"
#include "la/flops.hpp"
#include "la/norms.hpp"
#include "ortho/ortho.hpp"
#include "qrcp/qrcp.hpp"
#include "rng/gaussian.hpp"

namespace randla::sim {

using rsvd::PhaseTimer;

MultiDeviceContext::MultiDeviceContext(int num_devices, model::DeviceSpec spec,
                                       fault::InjectorPtr injector)
    : spec_(std::move(spec)) {
  if (num_devices <= 0)
    throw std::invalid_argument("MultiDeviceContext: need at least 1 device");
  devices_.reserve(static_cast<std::size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i) {
    devices_.push_back(std::make_unique<Device>(i, spec_));
    if (injector) devices_.back()->set_fault_injector(injector);
  }
}

MultiDeviceContext::~MultiDeviceContext() = default;

int MultiDeviceContext::healthy_devices() const {
  int n = 0;
  for (const auto& d : devices_)
    if (!d->failed()) ++n;
  return n;
}

MultiDeviceContext::RowBlocks MultiDeviceContext::distribute_rows(
    ConstMatrixView<double> a) {
  const int ng = num_devices();
  RowBlocks rb;
  rb.rows = a.rows();
  rb.cols = a.cols();
  rb.offset.resize(static_cast<std::size_t>(ng) + 1);
  const index_t base = a.rows() / ng;
  const index_t extra = a.rows() % ng;
  index_t off = 0;
  for (int i = 0; i < ng; ++i) {
    rb.offset[static_cast<std::size_t>(i)] = off;
    off += base + (i < extra ? 1 : 0);
  }
  rb.offset[static_cast<std::size_t>(ng)] = off;
  rb.block.reserve(static_cast<std::size_t>(ng));
  for (int i = 0; i < ng; ++i) {
    const index_t r0 = rb.offset[static_cast<std::size_t>(i)];
    const index_t r1 = rb.offset[static_cast<std::size_t>(i) + 1];
    rb.block.push_back(
        Matrix<double>::copy_of(a.rows_range(r0, r1)));
  }
  return rb;
}

namespace {

// Bulk-synchronous helper: run `fn(i)` on every device, wait, and return
// the largest modeled time any device charged for the step.
template <class Fn>
double parallel_step(std::vector<std::unique_ptr<Device>>& devices, Fn&& fn) {
  std::vector<double> before(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i)
    before[i] = devices[i]->modeled_time();
  std::vector<std::future<void>> futs;
  futs.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i)
    futs.push_back(devices[i]->submit([&fn, i] { fn(static_cast<int>(i)); }));
  for (auto& f : futs) f.get();
  double end = 0;
  for (std::size_t i = 0; i < devices.size(); ++i)
    end = std::max(end, devices[i]->modeled_time());
  // Barrier semantics: every device's clock advances to the laggard's.
  for (auto& d : devices) d->advance_to(end);
  double step = 0;
  for (std::size_t i = 0; i < devices.size(); ++i)
    step = std::max(step, end - before[i]);
  return step;
}

}  // namespace

MultiDeviceContext::CholQrTimes MultiDeviceContext::multi_cholqr_columns(
    std::vector<Matrix<double>>& w_blocks, Matrix<double>* r_out) {
  const int ng = num_devices();
  if (static_cast<int>(w_blocks.size()) != ng)
    throw std::invalid_argument("multi_cholqr_columns: block count mismatch");
  const index_t k = w_blocks[0].cols();
  CholQrTimes times;

  // Step 1 (Fig. 4): local Gram blocks G(i) = W(i)ᵀ·W(i).
  std::vector<Matrix<double>> g(static_cast<std::size_t>(ng));
  times.device += parallel_step(devices_, [&](int i) {
    auto& wi = w_blocks[static_cast<std::size_t>(i)];
    auto& gi = g[static_cast<std::size_t>(i)];
    gi.resize(k, k);
    blas::syrk(Uplo::Upper, Op::Trans, 1.0,
               ConstMatrixView<double>(wi.view()), 0.0, gi.view());
    devices_[static_cast<std::size_t>(i)]->charge(model::gemm_seconds(
        spec_, k, k, wi.rows()));
  });

  // Host: reduce G = Σ G(i) (gathered over PCIe), then Cholesky.
  Matrix<double> gram(k, k);
  for (int i = 0; i < ng; ++i) {
    const auto& gi = g[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < k; ++j)
      for (index_t r = 0; r <= j; ++r) gram(r, j) += gi(r, j);
    times.comms += model::transfer_seconds(spec_, double(k) * double(k));
  }
  times.host += model::host_seconds(spec_, flops::potrf(k));
  if (lapack::potrf(Uplo::Upper, gram.view()) != 0) {
    // CholQR breakdown: fall back to a host-side Householder pass on the
    // gathered matrix (rare; mirrors the single-device fallback).
    index_t rows = 0;
    for (auto& w : w_blocks) rows += w.rows();
    Matrix<double> full(rows, k);
    index_t off = 0;
    for (auto& w : w_blocks) {
      full.view().rows_range(off, off + w.rows()).copy_from(w.view());
      off += w.rows();
    }
    Matrix<double> rr(k, k);
    lapack::qr_explicit(full.view(), rr.view());
    off = 0;
    for (auto& w : w_blocks) {
      w.view().copy_from(
          ConstMatrixView<double>(full.view().rows_range(off, off + w.rows())));
      off += w.rows();
    }
    if (r_out) r_out->view().copy_from(ConstMatrixView<double>(rr.view()));
    times.comms +=
        2 * model::transfer_seconds(spec_, double(rows) * double(k));
    times.host += model::host_seconds(spec_, flops::geqrf(rows, k));
    return times;
  }
  if (r_out) {
    r_out->resize(k, k);
    for (index_t j = 0; j < k; ++j)
      for (index_t r = 0; r <= j; ++r) (*r_out)(r, j) = gram(r, j);
  }

  // Broadcast R̄ and solve locally: W(i) ← W(i)·R̄⁻¹.
  times.comms +=
      double(ng) * model::transfer_seconds(spec_, double(k) * double(k));
  times.device += parallel_step(devices_, [&](int i) {
    auto& wi = w_blocks[static_cast<std::size_t>(i)];
    blas::trsm(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
               ConstMatrixView<double>(gram.view()), wi.view());
    devices_[static_cast<std::size_t>(i)]->charge(
        flops::trsm(wi.rows(), k) /
        (model::gemm_gflops(spec_, k, wi.rows()) * 1e9));
  });
  return times;
}

MultiFixedRankResult MultiDeviceContext::fixed_rank(
    ConstMatrixView<double> a, const rsvd::FixedRankOptions& opts) {
  if (opts.sampling != rsvd::SamplingKind::Gaussian)
    throw std::invalid_argument(
        "MultiDeviceContext::fixed_rank: only Gaussian sampling is "
        "distributed (paper §4)");
  const int ng = num_devices();
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t l = opts.k + opts.p;
  if (l > std::min(m, n))
    throw std::invalid_argument("fixed_rank: k + p exceeds min(m, n)");

  MultiFixedRankResult out;
  auto& res = out.result;
  auto& modeled = out.modeled;

  // Distribute A (setup; the paper assumes A is already resident).
  RowBlocks ab = distribute_rows(a);

  // ---- Step 1a: each device generates its Ω(i) slice and samples.
  std::vector<Matrix<double>> omega(static_cast<std::size_t>(ng));
  std::vector<Matrix<double>> b_part(static_cast<std::size_t>(ng));
  {
    PhaseTimer t(res.phases.prng, "rsvd.prng");
    modeled.prng += parallel_step(devices_, [&](int i) {
      const index_t c = ab.block[static_cast<std::size_t>(i)].rows();
      auto& om = omega[static_cast<std::size_t>(i)];
      om.resize(l, c);
      // Column offset = global row offset ⇒ Ω identical to the
      // single-device run regardless of ng.
      rng::fill_gaussian(
          om.view(), opts.seed,
          static_cast<std::uint64_t>(ab.offset[static_cast<std::size_t>(i)]));
      devices_[static_cast<std::size_t>(i)]->charge(
          model::prng_seconds(spec_, l, c));
    });
  }
  Matrix<double> b(l, n);
  {
    PhaseTimer t(res.phases.sampling, "rsvd.sampling");
    modeled.sampling += parallel_step(devices_, [&](int i) {
      auto& bp = b_part[static_cast<std::size_t>(i)];
      bp.resize(l, n);
      blas::gemm(Op::NoTrans, Op::NoTrans, 1.0,
                 ConstMatrixView<double>(omega[static_cast<std::size_t>(i)].view()),
                 ConstMatrixView<double>(ab.block[static_cast<std::size_t>(i)].view()),
                 0.0, bp.view());
      devices_[static_cast<std::size_t>(i)]->charge(model::gemm_seconds(
          spec_, l, n, ab.block[static_cast<std::size_t>(i)].rows()));
    });
    // Host accumulation B = Σ B(i) (gather over PCIe).
    for (int i = 0; i < ng; ++i) {
      const auto& bp = b_part[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j)
        for (index_t r = 0; r < l; ++r) b(r, j) += bp(r, j);
      modeled.comms += model::transfer_seconds(spec_, double(l) * double(n));
    }
  }

  // ---- Step 1b: power iterations (paper §4 distribution).
  std::vector<Matrix<double>> c_part(static_cast<std::size_t>(ng));
  int fallbacks = 0;
  for (index_t it = 0; it < opts.q; ++it) {
    // Host QR of the short-wide B (ℓ×n): ℓ < n ≪ m, done on the CPU.
    {
      PhaseTimer t(res.phases.orth_iter, "rsvd.orth_iter");
      auto rep = ortho::orthonormalize_rows(opts.power_ortho, b.view());
      if (rep.fallback_used) fallbacks++;
      modeled.orth_iter += model::host_seconds(spec_, rep.flops);
    }
    // Broadcast the orthonormal B to every device.
    modeled.comms +=
        double(ng) * model::transfer_seconds(spec_, double(l) * double(n));

    // C(i) = B·A(i)ᵀ on each device.
    {
      PhaseTimer t(res.phases.gemm_iter, "rsvd.gemm_iter");
      modeled.gemm_iter += parallel_step(devices_, [&](int i) {
        const auto& ai = ab.block[static_cast<std::size_t>(i)];
        auto& cp = c_part[static_cast<std::size_t>(i)];
        cp.resize(l, ai.rows());
        blas::gemm(Op::NoTrans, Op::Trans, 1.0,
                   ConstMatrixView<double>(b.view()),
                   ConstMatrixView<double>(ai.view()), 0.0, cp.view());
        devices_[static_cast<std::size_t>(i)]->charge(
            model::gemm_seconds(spec_, l, ai.rows(), n));
      });
    }

    // Multi-device CholQR of the row-distributed Cᵀ (Figure 4): local
    // Gram G(i) = C(i)·C(i)ᵀ, host reduce + Cholesky, broadcast, local
    // triangular solve C(i) ← R̄⁻ᵀ·C(i).
    {
      PhaseTimer t(res.phases.orth_iter, "rsvd.orth_iter");
      std::vector<Matrix<double>> g(static_cast<std::size_t>(ng));
      modeled.orth_iter += parallel_step(devices_, [&](int i) {
        auto& cp = c_part[static_cast<std::size_t>(i)];
        auto& gi = g[static_cast<std::size_t>(i)];
        gi.resize(l, l);
        blas::syrk(Uplo::Lower, Op::NoTrans, 1.0,
                   ConstMatrixView<double>(cp.view()), 0.0, gi.view());
        devices_[static_cast<std::size_t>(i)]->charge(
            model::gemm_seconds(spec_, l, l, cp.cols()));
      });
      Matrix<double> gram(l, l);
      for (int i = 0; i < ng; ++i) {
        const auto& gi = g[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < l; ++j)
          for (index_t r = j; r < l; ++r) gram(r, j) += gi(r, j);
        modeled.comms += model::transfer_seconds(spec_, double(l) * double(l));
      }
      modeled.orth_iter += model::host_seconds(spec_, flops::potrf(l));
      const bool chol_ok = lapack::potrf(Uplo::Lower, gram.view()) == 0;
      if (chol_ok) {
        modeled.comms += double(ng) * model::transfer_seconds(
                                          spec_, double(l) * double(l));
        modeled.orth_iter += parallel_step(devices_, [&](int i) {
          auto& cp = c_part[static_cast<std::size_t>(i)];
          blas::trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0,
                     ConstMatrixView<double>(gram.view()), cp.view());
          devices_[static_cast<std::size_t>(i)]->charge(
              flops::trsm(cp.cols(), l) /
              (model::gemm_gflops(spec_, l, cp.cols()) * 1e9));
        });
      } else {
        // Breakdown: gather C on the host, HHQR its transpose, scatter.
        fallbacks++;
        Matrix<double> c_full(l, m);
        for (int i = 0; i < ng; ++i) {
          const auto& cp = c_part[static_cast<std::size_t>(i)];
          c_full.view()
              .cols_range(ab.offset[static_cast<std::size_t>(i)],
                          ab.offset[static_cast<std::size_t>(i)] + cp.cols())
              .copy_from(ConstMatrixView<double>(cp.view()));
        }
        ortho::orthonormalize_rows(ortho::Scheme::HHQR, c_full.view());
        for (int i = 0; i < ng; ++i) {
          auto& cp = c_part[static_cast<std::size_t>(i)];
          cp.view().copy_from(ConstMatrixView<double>(c_full.view().cols_range(
              ab.offset[static_cast<std::size_t>(i)],
              ab.offset[static_cast<std::size_t>(i)] + cp.cols())));
        }
        modeled.comms +=
            2.0 * model::transfer_seconds(spec_, double(l) * double(m));
        modeled.orth_iter +=
            model::host_seconds(spec_, flops::geqrf(m, l) + flops::orgqr(m, l));
      }
    }

    // B = C·A = Σ C(i)·A(i): local partials, host reduction.
    {
      PhaseTimer t(res.phases.gemm_iter, "rsvd.gemm_iter");
      modeled.gemm_iter += parallel_step(devices_, [&](int i) {
        const auto& ai = ab.block[static_cast<std::size_t>(i)];
        auto& bp = b_part[static_cast<std::size_t>(i)];
        blas::gemm(Op::NoTrans, Op::NoTrans, 1.0,
                   ConstMatrixView<double>(c_part[static_cast<std::size_t>(i)].view()),
                   ConstMatrixView<double>(ai.view()), 0.0, bp.view());
        devices_[static_cast<std::size_t>(i)]->charge(
            model::gemm_seconds(spec_, l, n, ai.rows()));
      });
      b.view().set_zero();
      for (int i = 0; i < ng; ++i) {
        const auto& bp = b_part[static_cast<std::size_t>(i)];
        for (index_t j = 0; j < n; ++j)
          for (index_t r = 0; r < l; ++r) b(r, j) += bp(r, j);
        modeled.comms += model::transfer_seconds(spec_, double(l) * double(n));
      }
    }
  }
  res.cholqr_fallbacks = fallbacks;

  // ---- Step 2: truncated QP3 of B on device 0 (paper §4).
  qrcp::QrcpFactors<double> fac;
  {
    PhaseTimer t(res.phases.qrcp, "rsvd.qrcp");
    modeled.comms += model::transfer_seconds(spec_, double(l) * double(n));
    auto fut = devices_[0]->submit([&] {
      fac = qrcp::qrcp_truncated(ConstMatrixView<double>(b.view()), opts.k,
                                 opts.qrcp_block);
      devices_[0]->charge(model::qp3_seconds(spec_, l, n, opts.k));
    });
    fut.get();
    const double end = devices_[0]->modeled_time();
    for (auto& d : devices_) d->advance_to(end);
    modeled.qrcp += model::qp3_seconds(spec_, l, n, opts.k);
    res.qrcp_stats = fac.stats;
  }
  res.perm = fac.perm;

  // ---- Step 3: multi-device CholQR of the row-distributed A·P₁:k.
  {
    PhaseTimer t(res.phases.qr, "rsvd.qr");
    std::vector<Matrix<double>> w(static_cast<std::size_t>(ng));
    parallel_step(devices_, [&](int i) {
      const auto& ai = ab.block[static_cast<std::size_t>(i)];
      auto& wi = w[static_cast<std::size_t>(i)];
      wi.resize(ai.rows(), opts.k);
      for (index_t j = 0; j < opts.k; ++j)
        wi.view().col(j).copy_from(
            ai.view().col(fac.perm[static_cast<std::size_t>(j)]));
      // Column gather is bandwidth-class work.
      devices_[static_cast<std::size_t>(i)]->charge(
          double(ai.rows()) * double(opts.k) * 8.0 /
          (spec_.mem_bw_gbps * 1e9));
    });
    Matrix<double> rbar(opts.k, opts.k);
    auto tq = multi_cholqr_columns(w, &rbar);
    modeled.qr += tq.device + tq.host;
    modeled.comms += tq.comms;

    // Materialize Q on the host (result delivery; not charged — the
    // factors would normally stay device-resident).
    res.q.resize(m, opts.k);
    for (int i = 0; i < ng; ++i) {
      res.q.view()
          .rows_range(ab.offset[static_cast<std::size_t>(i)],
                      ab.offset[static_cast<std::size_t>(i) + 1])
          .copy_from(ConstMatrixView<double>(w[static_cast<std::size_t>(i)].view()));
    }

    // Host assembly of R = R̄·(I_k  R̂₁⁻¹·R̂₂) — small triangular ops.
    Matrix<double> tmat = Matrix<double>::copy_of(fac.r2.view());
    if (tmat.cols() > 0) {
      blas::trsm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(fac.r1.view()), tmat.view());
    }
    res.r.resize(opts.k, n);
    res.r.view().cols_range(0, opts.k).copy_from(
        ConstMatrixView<double>(rbar.view()));
    if (n > opts.k) {
      auto right = res.r.view().cols_range(opts.k, n);
      right.copy_from(ConstMatrixView<double>(tmat.view()));
      blas::trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(rbar.view()), right);
    }
    modeled.qr += model::host_seconds(
        spec_, flops::trsm(n - opts.k, opts.k) +
                   double(opts.k) * double(opts.k) * double(n - opts.k));
  }

  res.l = l;
  out.modeled_total = modeled.total();
  return out;
}

}  // namespace randla::sim
