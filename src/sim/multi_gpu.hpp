// multi_gpu.hpp — multi-device random sampling (paper §4, Figures 4
// and 15).
//
// The matrix A is distributed in 1D block-row format, one block per
// simulated device. Ω and C are distributed in the matching 1D
// block-column format of Aᵀ. Each phase follows the paper's multi-GPU
// plan exactly:
//   * sampling — each device computes its partial B(i) = Ω(i)·A(i); the
//     host accumulates B = Σ B(i);
//   * QR of the small ℓ×n B on the host, broadcast back;
//   * C(i) = B·A(i)ᵀ locally; multi-device CholQR of C via local Gram
//     blocks G(i) = C(i)·C(i)ᵀ, host reduction + Cholesky, broadcast of
//     R̄, local triangular solves (Figure 4);
//   * Steps 2–3: truncated QP3 of B on one device, tall-skinny QR of
//     A·P₁:k by the same multi-device CholQR.
//
// Every kernel executes for real on the device's worker thread and
// charges modeled K40c time; host↔device traffic charges modeled PCIe
// time into the Comms phase. Modeled clocks combine with max() at each
// bulk-synchronous point, so the modeled total behaves like concurrent
// hardware even though the host has one core.
#pragma once

#include <memory>
#include <vector>

#include "model/perfmodel.hpp"
#include "rsvd/rsvd.hpp"
#include "sim/device.hpp"

namespace randla::sim {

/// Result of a multi-device run: the usual factorization plus the
/// modeled phase breakdown (the measured wall-clock breakdown in
/// `result.phases` is real but reflects the single-core host, so the
/// modeled numbers are the ones comparable to the paper's Figure 15).
struct MultiFixedRankResult {
  rsvd::FixedRankResult result;
  rsvd::PhaseTimes modeled;  ///< per-phase modeled seconds incl. comms
  double modeled_total = 0;
};

class MultiDeviceContext {
 public:
  /// `injector`, when set, is installed on every device (transient
  /// DeviceStall faults); device *death* is driven by the layer above
  /// (the scheduler's failover path) via Device::mark_failed.
  MultiDeviceContext(int num_devices, model::DeviceSpec spec = {},
                     fault::InjectorPtr injector = nullptr);
  ~MultiDeviceContext();

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }
  const Device& device(int i) const {
    return *devices_[static_cast<std::size_t>(i)];
  }
  const model::DeviceSpec& spec() const { return spec_; }

  /// Devices not marked failed (the serving runtime's usable capacity).
  int healthy_devices() const;

  /// A distributed in 1D block-row format (device i owns rows
  /// [offset[i], offset[i+1])).
  struct RowBlocks {
    std::vector<Matrix<double>> block;
    std::vector<index_t> offset;  ///< size ng+1
    index_t rows = 0;
    index_t cols = 0;
  };
  RowBlocks distribute_rows(ConstMatrixView<double> a);

  /// Multi-device fixed-rank random sampling (Gaussian sampling only —
  /// the paper's multi-GPU implementation).
  MultiFixedRankResult fixed_rank(ConstMatrixView<double> a,
                                  const rsvd::FixedRankOptions& opts);

  /// Multi-device CholQR of a row-distributed tall-skinny matrix
  /// (Figure 4): orthonormalizes the columns of W in place and returns
  /// the modeled seconds charged (device max + host + comms split out).
  struct CholQrTimes {
    double device = 0;
    double host = 0;
    double comms = 0;
  };
  CholQrTimes multi_cholqr_columns(std::vector<Matrix<double>>& w_blocks,
                                   Matrix<double>* r_out = nullptr);

 private:
  std::vector<std::unique_ptr<Device>> devices_;
  model::DeviceSpec spec_;
};

}  // namespace randla::sim
