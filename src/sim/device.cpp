#include "sim/device.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace randla::sim {

Device::Device(int id, model::DeviceSpec spec)
    : id_(id), spec_(std::move(spec)), thread_([this] { worker_loop(); }) {}

Device::~Device() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Device::mark_failed() {
  failed_.store(true, std::memory_order_release);
}

std::future<void> Device::submit(std::function<void()> fn) {
  if (failed()) {
    // Dead card: refuse at the queue, through the future, so callers
    // that only check .get() still observe the failure.
    std::packaged_task<void()> reject(
        [id = id_] { throw DeviceFailedError(id); });
    auto fut = reject.get_future();
    reject();
    return fut;
  }
  // Counters update inside the packaged task so they are already visible
  // when the returned future unblocks (a caller may read tasks_run()
  // right after .get() — e.g. scheduler worker stats after drain()).
  std::packaged_task<void()> task([this, fn = std::move(fn)] {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      fn();
    } catch (...) {
      account(t0);
      throw;
    }
    account(t0);
  });
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    idle_ = false;
  }
  cv_.notify_all();
  return fut;
}

void Device::account(std::chrono::steady_clock::time_point t0) {
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::lock_guard<std::mutex> lk(clock_mu_);
  ++tasks_run_;
  busy_seconds_ += dt;
}

void Device::synchronize() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && idle_; });
}

void Device::charge(double seconds) {
  std::lock_guard<std::mutex> lk(clock_mu_);
  modeled_time_ += seconds;
}

double Device::modeled_time() const {
  std::lock_guard<std::mutex> lk(clock_mu_);
  return modeled_time_;
}

void Device::advance_to(double t) {
  std::lock_guard<std::mutex> lk(clock_mu_);
  modeled_time_ = std::max(modeled_time_, t);
}

std::uint64_t Device::tasks_run() const {
  std::lock_guard<std::mutex> lk(clock_mu_);
  return tasks_run_;
}

double Device::busy_seconds() const {
  std::lock_guard<std::mutex> lk(clock_mu_);
  return busy_seconds_;
}

void Device::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      idle_ = queue_.empty();
      if (idle_) idle_cv_.notify_all();
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      idle_ = false;
    }
    // Transient stall injection: the card pauses (PCIe hiccup, thermal
    // throttle) but the task still runs to completion afterwards.
    if (injector_ && injector_->fire(fault::FaultKind::DeviceStall))
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          injector_->config().stall_ms));
    task();  // exceptions propagate through the packaged_task's future
  }
}

}  // namespace randla::sim
