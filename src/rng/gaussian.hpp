// gaussian.hpp — Gaussian variates and random matrix generation.
//
// The PRNG(ℓ, m) of the paper's Figure 2: fills sampling matrices with
// N(0, 1) entries (Box–Muller over Philox), plus Rademacher signs and
// sampling-without-replacement helpers for the SRFT sampling operator.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "rng/philox.hpp"

namespace randla::rng {

/// Streaming N(0, 1) generator (Box–Muller over a Philox stream).
class GaussianStream {
 public:
  explicit GaussianStream(std::uint64_t seed, std::uint64_t stream = 0)
      : gen_(seed, stream) {}

  double next() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    const double u1 = gen_.next_uniform();
    const double u2 = gen_.next_uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

 private:
  Philox4x32 gen_;
  double spare_ = 0;
  bool has_spare_ = false;
};

/// Fill `a` with i.i.d. N(0, 1) entries. Each column is generated from
/// its own Philox substream keyed by (seed, col_offset + j), so a
/// column-partitioned matrix generated on several simulated devices is
/// bitwise identical to one generated on a single device.
template <class Real>
void fill_gaussian(MatrixView<Real> a, std::uint64_t seed,
                   std::uint64_t col_offset = 0) {
  for (index_t j = 0; j < a.cols(); ++j) {
    GaussianStream g(seed, col_offset + static_cast<std::uint64_t>(j));
    Real* c = a.col_ptr(j);
    for (index_t i = 0; i < a.rows(); ++i) c[i] = static_cast<Real>(g.next());
  }
}

/// Convenience: newly allocated ℓ×m Gaussian matrix — PRNG(ℓ, m).
template <class Real>
Matrix<Real> gaussian_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<Real> a(rows, cols);
  fill_gaussian(a.view(), seed);
  return a;
}

/// Fill with i.i.d. Rademacher (±1) signs (SRFT's diagonal D).
template <class Real>
void fill_signs(MatrixView<Real> a, std::uint64_t seed) {
  Philox4x32 g(seed, 0x5167u);
  for (index_t j = 0; j < a.cols(); ++j) {
    Real* c = a.col_ptr(j);
    for (index_t i = 0; i < a.rows(); ++i)
      c[i] = (g.next_u32() & 1u) ? Real(1) : Real(-1);
  }
}

/// `count` distinct indices sampled uniformly from [0, n) (SRFT's row
/// selection S), via a partial Fisher–Yates shuffle.
std::vector<index_t> sample_without_replacement(index_t n, index_t count,
                                                std::uint64_t seed);

/// Uniform random permutation of [0, n).
std::vector<index_t> random_permutation(index_t n, std::uint64_t seed);

}  // namespace randla::rng
