// philox.hpp — Philox4x32-10 counter-based PRNG.
//
// Stands in for cuRAND: counter-based generation is exactly how cuRAND's
// Philox engine produces independent streams on a GPU, and it gives us
// the property the multi-device runtime needs — Ω is a pure function of
// (seed, stream, counter), so an ℓ×m Gaussian sampling matrix is bitwise
// identical no matter how many simulated devices generate their slices.
#pragma once

#include <array>
#include <cstdint>

namespace randla::rng {

/// Philox4x32-10 (Salmon et al., SC'11). Produces 4×32 random bits per
/// `block()` call from a 128-bit counter and 64-bit key.
class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  Philox4x32() = default;
  /// `seed` selects the key; `stream` partitions independent substreams
  /// (the high 64 bits of the counter).
  explicit Philox4x32(std::uint64_t seed, std::uint64_t stream = 0)
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)},
        counter_{0, 0, static_cast<std::uint32_t>(stream),
                 static_cast<std::uint32_t>(stream >> 32)} {}

  /// Jump directly to 128-bit position `index` within the stream
  /// (each index yields one 4-word block). Enables random access.
  void seek(std::uint64_t index) {
    counter_[0] = static_cast<std::uint32_t>(index);
    counter_[1] = static_cast<std::uint32_t>(index >> 32);
    buffered_ = 0;
  }

  /// Next 32 random bits.
  std::uint32_t next_u32() {
    if (buffered_ == 0) {
      block_ = round10(counter_, key_);
      advance();
      buffered_ = 4;
    }
    return block_[4 - buffered_--];
  }

  /// Next 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    const std::uint64_t hi = next_u32();
    return (hi << 32) | lo;
  }

  /// Uniform double in (0, 1) with 53 random bits, never exactly 0
  /// (safe for log() in Box–Muller).
  double next_uniform() {
    const std::uint64_t bits = next_u64() >> 11;  // 53 bits
    return (static_cast<double>(bits) + 0.5) * (1.0 / 9007199254740992.0);
  }

  /// Stateless evaluation: the `index`-th 4-word block of (seed, stream).
  static Counter at(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t index) {
    Key key{static_cast<std::uint32_t>(seed),
            static_cast<std::uint32_t>(seed >> 32)};
    Counter ctr{static_cast<std::uint32_t>(index),
                static_cast<std::uint32_t>(index >> 32),
                static_cast<std::uint32_t>(stream),
                static_cast<std::uint32_t>(stream >> 32)};
    return round10(ctr, key);
  }

 private:
  static constexpr std::uint32_t kM0 = 0xD2511F53u;
  static constexpr std::uint32_t kM1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kW0 = 0x9E3779B9u;  // golden ratio
  static constexpr std::uint32_t kW1 = 0xBB67AE85u;  // sqrt(3) - 1

  static void single_round(Counter& c, const Key& k) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kM0) * c[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kM1) * c[2];
    const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
    const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
    const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
    const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
    c = Counter{hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
  }

  static Counter round10(Counter c, Key k) {
    for (int r = 0; r < 10; ++r) {
      single_round(c, k);
      if (r < 9) {
        k[0] += kW0;
        k[1] += kW1;
      }
    }
    return c;
  }

  void advance() {
    if (++counter_[0] == 0) ++counter_[1];
  }

  Key key_{0, 0};
  Counter counter_{0, 0, 0, 0};
  Counter block_{};
  int buffered_ = 0;
};

}  // namespace randla::rng
