#include "rng/gaussian.hpp"

#include <numeric>
#include <stdexcept>

namespace randla::rng {

std::vector<index_t> sample_without_replacement(index_t n, index_t count,
                                                std::uint64_t seed) {
  if (count > n) throw std::invalid_argument("sample_without_replacement: count > n");
  std::vector<index_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), index_t{0});
  Philox4x32 g(seed, 0xF15Eu);
  // Partial Fisher–Yates: after `count` swaps the prefix is the sample.
  for (index_t i = 0; i < count; ++i) {
    // Rejection sampling for an unbiased index in [i, n).
    const std::uint64_t range = static_cast<std::uint64_t>(n - i);
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    std::uint64_t r;
    do {
      r = g.next_u64();
    } while (r >= limit);
    const index_t j = i + static_cast<index_t>(r % range);
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

std::vector<index_t> random_permutation(index_t n, std::uint64_t seed) {
  return sample_without_replacement(n, n, seed);
}

}  // namespace randla::rng
