#include "rsvd/rsvd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fft/fft.hpp"
#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/norms.hpp"
#include "la/parallel.hpp"
#include "rng/gaussian.hpp"
#include "rsvd/sketch.hpp"

namespace randla::rsvd {

const char* sampling_name(SamplingKind s) {
  return s == SamplingKind::Gaussian ? "Gaussian" : "FFT";
}

void power_iteration(ConstMatrixView<double> a, MatrixView<double> b,
                     MatrixView<double> c, index_t j0, index_t j1, index_t q,
                     ortho::Scheme scheme, PhaseTimes* phases,
                     PhaseFlops* flops, int* fallbacks) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  assert(b.cols() == n && c.cols() == m);
  assert(b.rows() >= j1 && c.rows() >= j1);

  PhaseTimes local_t;
  PhaseFlops local_f;
  const index_t nb = j1 - j0;

  auto b_prev = ConstMatrixView<double>(b.block(0, 0, j0, n));
  auto c_prev = ConstMatrixView<double>(c.block(0, 0, j0, m));
  auto b_cur = b.block(j0, 0, nb, n);
  auto c_cur = c.block(j0, 0, nb, m);

  for (index_t it = 0; it < q; ++it) {
    {
      // BOrth then QR, twice when refining against an existing basis
      // (see the adaptive fold for why interleaving matters).
      PhaseTimer t(local_t.orth_iter, "rsvd.orth_iter");
      const int passes = j0 > 0 ? 2 : 1;
      for (int pass = 0; pass < passes; ++pass) {
        ortho::block_orth_rows(b_prev, b_cur, /*passes=*/1);
        auto rep = ortho::orthonormalize_rows(scheme, b_cur);
        if (fallbacks && rep.fallback_used) ++*fallbacks;
        local_f.orth_iter +=
            4.0 * double(n) * double(j0) * double(nb) + rep.flops;
      }
    }
    {
      PhaseTimer t(local_t.gemm_iter, "rsvd.gemm_iter");
      // C_cur = B_cur·Aᵀ  ((nb×n)·(n×m)).
      blas::gemm(Op::NoTrans, Op::Trans, 1.0, ConstMatrixView<double>(b_cur), a,
                 0.0, c_cur);
      local_f.gemm_iter += flops::gemm(nb, m, n);
    }
    {
      PhaseTimer t(local_t.orth_iter, "rsvd.orth_iter");
      const int passes = j0 > 0 ? 2 : 1;
      for (int pass = 0; pass < passes; ++pass) {
        ortho::block_orth_rows(c_prev, c_cur, /*passes=*/1);
        auto rep = ortho::orthonormalize_rows(scheme, c_cur);
        if (fallbacks && rep.fallback_used) ++*fallbacks;
        local_f.orth_iter +=
            4.0 * double(m) * double(j0) * double(nb) + rep.flops;
      }
    }
    {
      PhaseTimer t(local_t.gemm_iter, "rsvd.gemm_iter");
      // B_cur = C_cur·A  ((nb×m)·(m×n)).
      blas::gemm(Op::NoTrans, Op::NoTrans, 1.0, ConstMatrixView<double>(c_cur),
                 a, 0.0, b_cur);
      local_f.gemm_iter += flops::gemm(nb, n, m);
    }
  }
  if (phases) *phases += local_t;
  if (flops) {
    flops->gemm_iter += local_f.gemm_iter;
    flops->orth_iter += local_f.orth_iter;
  }
}

namespace {

// Steps 2–3 shared by fixed_rank and finish_from_sample, accumulating
// into an existing result.
void steps_2_and_3(ConstMatrixView<double> a, ConstMatrixView<double> b,
                   index_t k, index_t qrcp_block, FixedRankResult& res) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t l = b.rows();
  if (k > l)
    throw std::invalid_argument("rsvd: k exceeds sampling dimension");
  if (k > std::min(m, n))
    throw std::invalid_argument("rsvd: k exceeds min(m, n)");

  // ---- Step 2: truncated QP3 of B.
  qrcp::QrcpFactors<double> fac;
  {
    PhaseTimer t(res.phases.qrcp, "rsvd.qrcp");
    fac = qrcp::qrcp_truncated(b, k, qrcp_block);
    res.qrcp_stats = fac.stats;
    res.flops.qrcp += fac.stats.flops_blas2 + fac.stats.flops_blas3;
  }
  res.perm = fac.perm;

  // ---- Step 3: QR of A·P₁:k, then R = R̄·(I_k  R̂₁⁻¹·R̂₂).
  {
    PhaseTimer t(res.phases.qr, "rsvd.qr");
    res.q = permuted_leading_columns(a, fac.perm, k);
    Matrix<double> rbar(k, k);
    auto rep = ortho::orthonormalize_columns(ortho::Scheme::CholQR2,
                                             res.q.view(), rbar.view());
    if (rep.fallback_used) res.cholqr_fallbacks++;
    res.flops.qr += rep.flops;

    // T = R̂₁⁻¹·R̂₂ solved in place on a copy of R̂₂ — but only on the
    // leading numerical-rank block of R̂₁. For a rank-deficient sample
    // (rank(A) < k) the trailing diagonal of R̂₁ is ~0 and so are the
    // matching rows of R̂₂; solving through them would produce Inf/NaN
    // where the correct coupling is simply zero.
    Matrix<double> tmat = Matrix<double>::copy_of(fac.r2.view());
    if (tmat.cols() > 0) {
      double dmax = 0;
      for (index_t i = 0; i < k; ++i)
        dmax = std::max(dmax, std::abs(fac.r1(i, i)));
      const double tiny = dmax * 1e-13;
      index_t reff = 0;
      while (reff < k && std::abs(fac.r1(reff, reff)) > tiny) ++reff;
      if (reff < k) {
        for (index_t j = 0; j < tmat.cols(); ++j)
          for (index_t i = reff; i < k; ++i) tmat(i, j) = 0.0;
      }
      if (reff > 0) {
        blas::trsm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
                   ConstMatrixView<double>(fac.r1.block(0, 0, reff, reff)),
                   tmat.view().rows_range(0, reff));
      }
      res.flops.qr += flops::trsm(tmat.cols(), k);
    }

    // R = [R̄  R̄·T] (k×n, in the permuted column order).
    res.r.resize(k, n);
    res.r.view().cols_range(0, k).copy_from(
        ConstMatrixView<double>(rbar.view()));
    if (n > k) {
      auto right = res.r.view().cols_range(k, n);
      right.copy_from(ConstMatrixView<double>(tmat.view()));
      blas::trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(rbar.view()), right);
      res.flops.qr += double(k) * double(k) * double(n - k);
    }
  }
  res.l = l;
}

}  // namespace

Matrix<double> compute_sample(ConstMatrixView<double> a,
                              const FixedRankOptions& opts, PhaseTimes* phases,
                              PhaseFlops* flops_out, int* cholqr_fallbacks) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (opts.k <= 0) throw std::invalid_argument("fixed_rank: k must be positive");
  if (opts.p < 0) throw std::invalid_argument("fixed_rank: p must be non-negative");
  if (opts.q < 0) throw std::invalid_argument("fixed_rank: q must be non-negative");
  const index_t l = opts.k + opts.p;
  if (l > std::min(m, n))
    throw std::invalid_argument("fixed_rank: k + p exceeds min(m, n)");

  PhaseTimes local_t;
  PhaseFlops local_f;

  // ---- Step 1: sampling (shared kernel with the RQRCP engine).
  Matrix<double> b(l, n);
  if (opts.sampling == SamplingKind::Gaussian) {
    b = gaussian_sketch<double>(a, l, opts.seed, &local_t.prng,
                                &local_t.sampling, &local_f);
  } else {
    PhaseTimer t(local_t.sampling, "rsvd.sampling");
    b = fft::fft_sample_rows(a, l, opts.seed);
    local_f.sampling += double(n) * flops::fft(fft::next_pow2(m));
  }

  // ---- Step 1 (cont.): power iterations with re-orthogonalization.
  if (opts.q > 0) {
    Matrix<double> c(l, m);
    power_iteration(a, b.view(), c.view(), 0, l, opts.q, opts.power_ortho,
                    &local_t, &local_f, cholqr_fallbacks);
  }

  if (phases) *phases += local_t;
  if (flops_out) {
    flops_out->prng += local_f.prng;
    flops_out->sampling += local_f.sampling;
    flops_out->gemm_iter += local_f.gemm_iter;
    flops_out->orth_iter += local_f.orth_iter;
  }
  return b;
}

void compute_samples_batched(SampleBatchItem* items, index_t count) {
  if (count <= 0) return;
  if (count == 1) {
    items[0].b = compute_sample(items[0].a, items[0].opts, &items[0].phases,
                                &items[0].flops, &items[0].cholqr_fallbacks);
    return;
  }

  const ortho::Scheme scheme = items[0].opts.power_ortho;
  for (index_t i = 0; i < count; ++i) {
    const SampleBatchItem& it = items[i];
    if (it.opts.sampling != SamplingKind::Gaussian)
      throw std::invalid_argument(
          "compute_samples_batched: Gaussian sampling only");
    if (it.opts.power_ortho != scheme)
      throw std::invalid_argument(
          "compute_samples_batched: mixed orthogonalization schemes");
    if (it.opts.k <= 0)
      throw std::invalid_argument("fixed_rank: k must be positive");
    if (it.opts.p < 0)
      throw std::invalid_argument("fixed_rank: p must be non-negative");
    if (it.opts.q < 0)
      throw std::invalid_argument("fixed_rank: q must be non-negative");
    if (it.opts.k + it.opts.p > std::min(it.a.rows(), it.a.cols()))
      throw std::invalid_argument("fixed_rank: k + p exceeds min(m, n)");
  }

  PhaseTimes batch_t;
  std::vector<PhaseFlops> f(static_cast<std::size_t>(count));
  auto fl = [&](index_t i) -> PhaseFlops& {
    return f[static_cast<std::size_t>(i)];
  };

  // ---- Step 1: Ω generation, each job from its own seed (the PRNG is
  // counter-based, so jobs are independent and the walk is bitwise
  // deterministic at any thread count).
  std::vector<Matrix<double>> omega(static_cast<std::size_t>(count));
  {
    PhaseTimer t(batch_t.prng, "rsvd.prng");
    parallel_ranges(count, 1, [&](index_t i0, index_t i1) {
      for (index_t i = i0; i < i1; ++i) {
        SampleBatchItem& it = items[i];
        const index_t l = it.opts.k + it.opts.p;
        omega[static_cast<std::size_t>(i)] =
            rng::gaussian_matrix<double>(l, it.a.rows(), it.opts.seed);
        it.b = Matrix<double>(l, it.a.cols());
        fl(i).prng += double(l) * double(it.a.rows());
      }
    });
  }

  // ---- Step 1: every job's sampling GEMM B = Ω·A in one batched walk.
  {
    PhaseTimer t(batch_t.sampling, "rsvd.sampling");
    std::vector<blas::GemmProblem<double>> probs(
        static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      SampleBatchItem& it = items[i];
      auto& p = probs[static_cast<std::size_t>(i)];
      p.a = ConstMatrixView<double>(omega[static_cast<std::size_t>(i)].view());
      p.b = it.a;
      p.c = it.b.view();
      fl(i).sampling += flops::gemm(it.b.rows(), it.b.cols(), it.a.rows());
    }
    blas::gemm_batched(probs.data(), count);
  }
  omega.clear();

  // ---- Step 1 (cont.): lock-step power iterations. Jobs whose q is
  // exhausted drop out of the round; within a round the orthogonalization
  // of every active job's panel is one cholqr_panel_batched walk and the
  // two multiplies are one gemm_batched each.
  index_t max_q = 0;
  for (index_t i = 0; i < count; ++i)
    max_q = std::max(max_q, items[i].opts.q);
  std::vector<Matrix<double>> c(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i)
    if (items[i].opts.q > 0)
      c[static_cast<std::size_t>(i)] =
          Matrix<double>(items[i].b.rows(), items[i].a.rows());

  std::vector<index_t> active;
  std::vector<MatrixView<double>> panels;
  std::vector<ortho::OrthoReport> reps;
  auto orth_active = [&](bool rows_of_b) {
    PhaseTimer t(batch_t.orth_iter, "rsvd.orth_iter");
    panels.clear();
    for (index_t idx : active)
      panels.push_back(rows_of_b
                           ? items[idx].b.view()
                           : c[static_cast<std::size_t>(idx)].view());
    reps.assign(active.size(), ortho::OrthoReport{});
    ortho::cholqr_panel_batched(scheme, panels.data(),
                                static_cast<index_t>(panels.size()),
                                reps.data());
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (reps[j].fallback_used) ++items[active[j]].cholqr_fallbacks;
      fl(active[j]).orth_iter += reps[j].flops;
    }
  };

  for (index_t it = 0; it < max_q; ++it) {
    active.clear();
    for (index_t i = 0; i < count; ++i)
      if (items[i].opts.q > it) active.push_back(i);

    orth_active(/*rows_of_b=*/true);
    {
      PhaseTimer t(batch_t.gemm_iter, "rsvd.gemm_iter");
      std::vector<blas::GemmProblem<double>> probs(active.size());
      for (std::size_t j = 0; j < active.size(); ++j) {
        SampleBatchItem& itj = items[active[j]];
        auto& p = probs[j];
        p.opb = Op::Trans;
        p.a = ConstMatrixView<double>(itj.b.view());
        p.b = itj.a;
        p.c = c[static_cast<std::size_t>(active[j])].view();
        fl(active[j]).gemm_iter +=
            flops::gemm(itj.b.rows(), itj.a.rows(), itj.a.cols());
      }
      blas::gemm_batched(probs.data(), static_cast<index_t>(probs.size()));
    }
    orth_active(/*rows_of_b=*/false);
    {
      PhaseTimer t(batch_t.gemm_iter, "rsvd.gemm_iter");
      std::vector<blas::GemmProblem<double>> probs(active.size());
      for (std::size_t j = 0; j < active.size(); ++j) {
        SampleBatchItem& itj = items[active[j]];
        auto& p = probs[j];
        p.a = ConstMatrixView<double>(
            c[static_cast<std::size_t>(active[j])].view());
        p.b = itj.a;
        p.c = itj.b.view();
        fl(active[j]).gemm_iter +=
            flops::gemm(itj.b.rows(), itj.a.cols(), itj.a.rows());
      }
      blas::gemm_batched(probs.data(), static_cast<index_t>(probs.size()));
    }
  }

  // Attribute each batch phase's wall time to jobs by flop share (the
  // deadline model calibrates on per-job exec seconds, so every second
  // of the batch must land on exactly one job).
  PhaseFlops tot;
  for (index_t i = 0; i < count; ++i) {
    tot.prng += fl(i).prng;
    tot.sampling += fl(i).sampling;
    tot.gemm_iter += fl(i).gemm_iter;
    tot.orth_iter += fl(i).orth_iter;
  }
  auto share = [&](double batch_s, double mine, double total) {
    return total > 0 ? batch_s * (mine / total) : batch_s / double(count);
  };
  for (index_t i = 0; i < count; ++i) {
    SampleBatchItem& it = items[i];
    it.phases.prng += share(batch_t.prng, fl(i).prng, tot.prng);
    it.phases.sampling += share(batch_t.sampling, fl(i).sampling, tot.sampling);
    it.phases.gemm_iter +=
        share(batch_t.gemm_iter, fl(i).gemm_iter, tot.gemm_iter);
    it.phases.orth_iter +=
        share(batch_t.orth_iter, fl(i).orth_iter, tot.orth_iter);
    it.flops.prng += fl(i).prng;
    it.flops.sampling += fl(i).sampling;
    it.flops.gemm_iter += fl(i).gemm_iter;
    it.flops.orth_iter += fl(i).orth_iter;
  }
}

FixedRankResult fixed_rank(ConstMatrixView<double> a,
                           const FixedRankOptions& opts) {
  FixedRankResult res;
  Matrix<double> b = compute_sample(a, opts, &res.phases, &res.flops,
                                    &res.cholqr_fallbacks);

  // ---- Steps 2 and 3.
  steps_2_and_3(a, ConstMatrixView<double>(b.view()), opts.k, opts.qrcp_block,
                res);
  return res;
}

FixedRankResult finish_from_sample(ConstMatrixView<double> a,
                                   ConstMatrixView<double> b, index_t k,
                                   index_t qrcp_block) {
  FixedRankResult res;
  steps_2_and_3(a, b, k, qrcp_block, res);
  return res;
}

double approximation_error(ConstMatrixView<double> a,
                           const FixedRankResult& res) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = res.q.cols();
  // E = A·P − Q·R.
  Matrix<double> e(m, n);
  apply_column_permutation(a, res.perm, e.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, -1.0,
             ConstMatrixView<double>(res.q.view()),
             ConstMatrixView<double>(res.r.view()), 1.0, e.view());
  (void)k;
  // Frobenius-relative, matching the magnitudes the paper tabulates in
  // Fig. 6 (its hapmap error of 0.599 at kappa ~ 20 is only consistent
  // with the Frobenius norm).
  const double na = norm_fro(a);
  return na > 0 ? norm_fro(ConstMatrixView<double>(e.view())) / na : 0.0;
}

double projection_error(ConstMatrixView<double> a, ConstMatrixView<double> b) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t l = b.rows();
  assert(b.cols() == n);
  // E = A − (A·Bᵀ)·B.
  Matrix<double> coeff(m, l);
  blas::gemm(Op::NoTrans, Op::Trans, 1.0, a, b, 0.0, coeff.view());
  Matrix<double> e = Matrix<double>::copy_of(a);
  blas::gemm(Op::NoTrans, Op::NoTrans, -1.0,
             ConstMatrixView<double>(coeff.view()), b, 1.0, e.view());
  const double na = norm_fro(a);
  return na > 0 ? norm_fro(ConstMatrixView<double>(e.view())) / na : 0.0;
}

}  // namespace randla::rsvd
