// adaptive.hpp — the adaptive-ℓ scheme for the fixed-accuracy problem
// (paper Figure 3 and §10).
//
// The sampled subspace is grown by ℓ_inc rows per step; after each
// expansion a fresh probe block B_{ℓ+1:k} = Ω_new·A estimates the
// remaining error ε̃ ≈ ‖A − A·B₁:ℓᵀ·B₁:ℓ‖, and iteration stops once
// ε̃ ≤ ε. The probe block is reused as the next expansion (it is the
// "new set of basis vectors" fed to POWER), so no sampling work is
// wasted. ℓ_inc is either static or adapted by linear interpolation of
// the last two (ℓ, log ε̃) points — the adaptive variant of Figure 17.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "ortho/ortho.hpp"
#include "rsvd/phases.hpp"
#include "rsvd/rsvd.hpp"

namespace randla::rsvd {

enum class IncMode : std::uint8_t {
  Static,        ///< ℓ_inc fixed (Fig. 16 lines)
  Interpolated,  ///< linear interpolation of log ε̃ (Fig. 17 "adapt.")
};

struct AdaptiveOptions {
  double epsilon = 1e-12;  ///< target error estimate (relative to ‖A‖ if
                           ///< `relative` is true)
  bool relative = false;
  index_t l_init = 8;
  index_t l_inc = 8;
  IncMode mode = IncMode::Static;
  index_t l_max = 0;       ///< hard cap on ℓ (0 = min(m, n))
  index_t q = 0;           ///< power iterations per expansion
  ortho::Scheme power_ortho = ortho::Scheme::CholQR2;
  std::uint64_t seed = 20151115;
  index_t inc_min = 4;     ///< clamp for interpolated ℓ_inc
  index_t inc_max = 128;
};

/// One convergence-trace entry (one repeat-loop iteration of Fig. 3).
struct AdaptiveStep {
  index_t l = 0;          ///< basis size after this expansion
  index_t l_inc = 0;      ///< increment used to reach it
  double err_est = 0;     ///< ε̃ from the probe block
  double seconds = 0;     ///< cumulative wall-clock at this point
};

struct AdaptiveResult {
  Matrix<double> basis;   ///< final ℓ×n row-orthonormal basis B₁:ℓ
  std::vector<AdaptiveStep> trace;
  bool converged = false;
  PhaseTimes phases;
  PhaseFlops flops;
  int cholqr_fallbacks = 0;
};

/// Figure 3: grow a row-orthonormal sampled basis until the probabilistic
/// error estimate drops below opts.epsilon.
AdaptiveResult adaptive_sample(ConstMatrixView<double> a,
                               const AdaptiveOptions& opts);

/// Convenience: adaptive sampling followed by Steps 2–3 on the final
/// basis (rank = final ℓ), solving the fixed-accuracy problem end to end.
FixedRankResult fixed_accuracy(ConstMatrixView<double> a,
                               const AdaptiveOptions& opts);

}  // namespace randla::rsvd
