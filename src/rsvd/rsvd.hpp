// rsvd.hpp — random sampling for low-rank approximation (paper §3–4).
//
// Fixed-rank problem (Figure 2): compute AP ≈ Q·R of rank k for a
// user-chosen k, via
//   Step 1  B = Ω·A (Gaussian GEMM or FFT sampling), ℓ = k + p rows,
//           refined by q power iterations with re-orthogonalization;
//   Step 2  truncated QP3 of the small ℓ×n matrix B;
//   Step 3  QR of A·P₁:k and assembly R = R̄·(I_k  R̂₁:k⁻¹·R̂ₖ₊₁:n).
#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "la/permutation.hpp"
#include "ortho/ortho.hpp"
#include "qrcp/qrcp.hpp"
#include "rsvd/phases.hpp"

namespace randla::rsvd {

enum class SamplingKind : std::uint8_t {
  Gaussian,  ///< pruned Gaussian sampling: Ω from PRNG, B = Ω·A (GEMM)
  FFT,       ///< full FFT sampling: transform + random row selection
};

const char* sampling_name(SamplingKind s);

struct FixedRankOptions {
  index_t k = 50;       ///< target rank
  index_t p = 10;       ///< oversampling (ℓ = k + p)
  index_t q = 1;        ///< power iterations
  SamplingKind sampling = SamplingKind::Gaussian;
  /// Orthogonalization inside the power iteration. The paper's stable
  /// setting is CholQR with one full re-orthogonalization (§6).
  ortho::Scheme power_ortho = ortho::Scheme::CholQR2;
  index_t qrcp_block = 32;
  std::uint64_t seed = 20151115;
};

struct FixedRankResult {
  Matrix<double> q;      ///< m×k, orthonormal columns
  Matrix<double> r;      ///< k×n
  Permutation perm;      ///< AP ≈ QR, perm[j] = original column index
  index_t l = 0;         ///< sampling dimension used

  PhaseTimes phases;     ///< Figure 11 breakdown
  PhaseFlops flops;      ///< same breakdown in flops
  qrcp::QrcpStats qrcp_stats;
  int cholqr_fallbacks = 0;  ///< power-iteration orthogonalization rescues
};

/// Figure 2(b): full fixed-rank random sampling driver.
FixedRankResult fixed_rank(ConstMatrixView<double> a,
                           const FixedRankOptions& opts);

/// Figure 2(a) POWER: refine rows [j0, j1) of the ℓ×n sampled matrix
/// `b` with q power iterations against A, keeping them orthogonal to
/// rows [0, j0). `c` (ℓ×m) holds the co-sampled matrix and must have the
/// same row capacity as `b`. Phases/flops are accumulated if non-null.
void power_iteration(ConstMatrixView<double> a, MatrixView<double> b,
                     MatrixView<double> c, index_t j0, index_t j1, index_t q,
                     ortho::Scheme scheme, PhaseTimes* phases = nullptr,
                     PhaseFlops* flops = nullptr, int* fallbacks = nullptr);

/// Step 1 of Figure 2(b) on its own: the ℓ×n sampled matrix B after the
/// initial sampling (Gaussian GEMM or FFT) and q power iterations. B is
/// a pure function of (A, opts minus k/qrcp_block) — it is the cheap,
/// reusable object the serving runtime caches, since any k ≤ ℓ can be
/// finished from the same B via finish_from_sample.
Matrix<double> compute_sample(ConstMatrixView<double> a,
                              const FixedRankOptions& opts,
                              PhaseTimes* phases = nullptr,
                              PhaseFlops* flops = nullptr,
                              int* cholqr_fallbacks = nullptr);

/// One job's Step-1 sample in a batched computation: inputs (a, opts)
/// and outputs (b, phases, flops, cholqr_fallbacks) for that job.
struct SampleBatchItem {
  ConstMatrixView<double> a;
  FixedRankOptions opts;
  Matrix<double> b;          ///< out: the ℓ×n sampled matrix
  PhaseTimes phases;         ///< out: batch wall time, flops-share attributed
  PhaseFlops flops;          ///< out: this job's own flop counts
  int cholqr_fallbacks = 0;  ///< out: power-iteration orthogonalization rescues
};

/// Step 1 for N independent jobs through the batched kernel tier: all
/// sampling GEMMs run as one gemm_batched walk, and each power-iteration
/// round batches the row orthonormalizations (cholqr_panel_batched) and
/// the B·Aᵀ / C·A multiplies of every still-active job (jobs with
/// different q drop out as their iterations complete). Each item's `b`
/// is bitwise identical to compute_sample on that item alone — the
/// batch only changes scheduling, never summation order — so cached
/// results stay deterministic. Requires Gaussian sampling and a uniform
/// power_ortho scheme across items (the collector's compatibility
/// predicate guarantees both).
void compute_samples_batched(SampleBatchItem* items, index_t count);

/// Steps 2–3 of Figure 2(b) applied to an already-computed sampled
/// matrix B (ℓ×n): truncated QP3 of B, then QR of A·P₁:k and the
/// triangular assembly of R.
FixedRankResult finish_from_sample(ConstMatrixView<double> a,
                                   ConstMatrixView<double> b, index_t k,
                                   index_t qrcp_block = 32);

/// ‖A·P − Q·R‖₂ / ‖A‖₂ — the Figure 6 error measure (spectral norms via
/// power iteration estimates).
double approximation_error(ConstMatrixView<double> a,
                           const FixedRankResult& res);

/// Same measure for a row-orthonormal basis B (ℓ×n):
/// ‖A − A·Bᵀ·B‖₂ / ‖A‖₂ (used by the adaptive scheme's "actual error").
double projection_error(ConstMatrixView<double> a, ConstMatrixView<double> b);

}  // namespace randla::rsvd
