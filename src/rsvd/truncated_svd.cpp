#include "rsvd/truncated_svd.hpp"

#include "la/blas3.hpp"
#include "la/norms.hpp"
#include "la/svd_jacobi.hpp"

namespace randla::rsvd {

TruncatedSvdResult truncated_svd(ConstMatrixView<double> a,
                                 const FixedRankOptions& opts) {
  const index_t m = a.rows();
  const index_t n = a.cols();

  FixedRankResult fr = fixed_rank(a, opts);
  const index_t k = fr.q.cols();

  TruncatedSvdResult out;
  out.l = fr.l;
  out.phases = fr.phases;
  out.cholqr_fallbacks = fr.cholqr_fallbacks;

  PhaseTimer t(out.phases.qr, "rsvd.qr");

  // Undo the column permutation of R so that A ≈ Q·R′ with R′ in the
  // original column order: R′(:, perm[j]) = R(:, j).
  Matrix<double> r_unperm(k, n);
  for (index_t j = 0; j < n; ++j)
    r_unperm.view()
        .col(fr.perm[static_cast<std::size_t>(j)])
        .copy_from(fr.r.view().col(j));

  // Small SVD of the k×n factor: R′ = U_r·diag(σ)·Vᵀ.
  auto small = lapack::svd_jacobi<double>(r_unperm.view());
  out.sigma = std::move(small.sigma);
  out.sigma.resize(static_cast<std::size_t>(k));
  out.v = std::move(small.v);  // n×k

  // U = Q·U_r.
  out.u.resize(m, k);
  blas::gemm(Op::NoTrans, Op::NoTrans, 1.0,
             ConstMatrixView<double>(fr.q.view()),
             ConstMatrixView<double>(small.u.block(0, 0, k, k)), 0.0,
             out.u.view());
  return out;
}

double svd_approximation_error(ConstMatrixView<double> a,
                               const TruncatedSvdResult& res) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = res.u.cols();
  // E = A − (U·diag(σ))·Vᵀ.
  Matrix<double> us = Matrix<double>::copy_of(res.u.view());
  for (index_t j = 0; j < k; ++j) {
    double* c = us.view().col_ptr(j);
    for (index_t i = 0; i < m; ++i) c[i] *= res.sigma[static_cast<std::size_t>(j)];
  }
  Matrix<double> e = Matrix<double>::copy_of(a);
  blas::gemm(Op::NoTrans, Op::Trans, -1.0, ConstMatrixView<double>(us.view()),
             ConstMatrixView<double>(res.v.view()), 1.0, e.view());
  (void)n;
  const double na = norm_fro(a);
  return na > 0 ? norm_fro(ConstMatrixView<double>(e.view())) / na : 0.0;
}

}  // namespace randla::rsvd
