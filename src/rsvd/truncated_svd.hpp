// truncated_svd.hpp — rank-k SVD from the random sampling factorization.
//
// The paper delivers AP ≈ QR (equation (1)); most downstream users of a
// randomized low-rank toolkit (PCA, LSA, the population-clustering
// application of §6) want the SVD form A ≈ U·diag(σ)·Vᵀ. It costs one
// small dense SVD of the k×n factor R plus one m×k GEMM on top of
// Figure 2 — the classic finish of Halko et al. [9, Alg. 5.1].
#pragma once

#include <vector>

#include "rsvd/rsvd.hpp"

namespace randla::rsvd {

struct TruncatedSvdResult {
  Matrix<double> u;           ///< m×k, orthonormal columns
  std::vector<double> sigma;  ///< k singular value estimates, descending
  Matrix<double> v;           ///< n×k, orthonormal columns
  index_t l = 0;              ///< sampling dimension used
  PhaseTimes phases;          ///< Figure-2 phases + the SVD finish in `qr`
  int cholqr_fallbacks = 0;
};

/// Rank-k truncated SVD via random sampling: runs fixed_rank(a, opts)
/// and converts AP ≈ QR into A ≈ U·diag(σ)·Vᵀ.
TruncatedSvdResult truncated_svd(ConstMatrixView<double> a,
                                 const FixedRankOptions& opts);

/// ‖A − U·diag(σ)·Vᵀ‖_F / ‖A‖_F.
double svd_approximation_error(ConstMatrixView<double> a,
                               const TruncatedSvdResult& res);

}  // namespace randla::rsvd
