// phases.hpp — per-phase instrumentation matching the paper's Figure 11
// legend: PRNG, Sampling, GEMM (iter), Orth (iter), QRCP, QR, Comms.
#pragma once

#include <chrono>
#include <string>

#include "obs/trace.hpp"

namespace randla::rsvd {

/// Accumulated wall-clock seconds and flops per algorithm phase.
struct PhaseTimes {
  double prng = 0;        ///< Ω generation
  double sampling = 0;    ///< B = Ω·A (initial sample)
  double gemm_iter = 0;   ///< matrix multiplies inside power iterations
  double orth_iter = 0;   ///< orthogonalization inside power iterations
  double qrcp = 0;        ///< Step 2 truncated QP3 of B
  double qr = 0;          ///< Step 3 QR of A·P₁:k + R assembly
  double comms = 0;       ///< host↔device traffic (multi-device runs)

  double total() const {
    return prng + sampling + gemm_iter + orth_iter + qrcp + qr + comms;
  }

  PhaseTimes& operator+=(const PhaseTimes& o) {
    prng += o.prng;
    sampling += o.sampling;
    gemm_iter += o.gemm_iter;
    orth_iter += o.orth_iter;
    qrcp += o.qrcp;
    qr += o.qr;
    comms += o.comms;
    return *this;
  }
};

/// Same breakdown, counting flops (feeds the performance model).
struct PhaseFlops {
  double prng = 0;
  double sampling = 0;
  double gemm_iter = 0;
  double orth_iter = 0;
  double qrcp = 0;
  double qr = 0;

  double total() const {
    return prng + sampling + gemm_iter + orth_iter + qrcp + qr;
  }
};

/// Scope timer adding elapsed seconds to a PhaseTimes field. When given
/// a span name (a string literal) it additionally records an obs span
/// under the thread's current trace id, so phase timings land in the
/// request's Chrome trace without threading ids through the algorithms.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot, const char* span_name = nullptr)
      : slot_(slot),
        span_name_(span_name),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    const auto end = std::chrono::steady_clock::now();
    slot_ += std::chrono::duration<double>(end - start_).count();
    if (span_name_ != nullptr && obs::Tracer::global().enabled()) {
      const std::uint64_t id = obs::current_trace_id();
      if (id != 0)
        obs::Tracer::global().record_complete(id, span_name_, "rsvd",
                                              start_, end);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  const char* span_name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace randla::rsvd
