// sketch.hpp — shared Gaussian sketch kernel for the random-sampling
// backends.
//
// Both the rsvd Step-1 (B = ΩA before power iterations) and the RQRCP
// engine's sketch/resketch path need the same primitive: draw Ω (ℓ×m)
// from a Philox-counter seed and take one gemm. Keeping it here means
// every backend inherits the same column-substream determinism (a
// sketch of a column-partitioned matrix is bitwise identical across
// device counts) and the same phase accounting hooks.
#pragma once

#include <cstdint>

#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/matrix.hpp"
#include "rng/gaussian.hpp"
#include "rsvd/phases.hpp"

namespace randla::rsvd {

/// B = Ω·A with Ω gaussian ℓ×m drawn from `seed`. When the slot
/// pointers are given, the PRNG and gemm sub-phases are timed into them
/// (with obs spans); `flops` accumulates {prng, sampling} counts.
template <class Real>
Matrix<Real> gaussian_sketch(ConstMatrixView<Real> a, index_t l,
                             std::uint64_t seed, double* prng_s = nullptr,
                             double* gemm_s = nullptr,
                             PhaseFlops* flops_out = nullptr) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  Matrix<Real> omega;
  {
    double scratch = 0;
    PhaseTimer t(prng_s ? *prng_s : scratch, prng_s ? "rsvd.prng" : nullptr);
    omega = rng::gaussian_matrix<Real>(l, m, seed);
  }
  Matrix<Real> b(l, n);
  {
    double scratch = 0;
    PhaseTimer t(gemm_s ? *gemm_s : scratch,
                 gemm_s ? "rsvd.sampling" : nullptr);
    blas::gemm(Op::NoTrans, Op::NoTrans, Real(1),
               ConstMatrixView<Real>(omega.view()), a, Real(0), b.view());
  }
  if (flops_out) {
    flops_out->prng += double(l) * double(m);
    flops_out->sampling += flops::gemm(l, n, m);
  }
  return b;
}

}  // namespace randla::rsvd
