#include "rsvd/adaptive.hpp"

#include <algorithm>
#include <stdexcept>
#include <chrono>
#include <cmath>

#include "la/blas1.hpp"
#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/norms.hpp"
#include "rng/gaussian.hpp"

namespace randla::rsvd {

namespace {

// ε̃ = ‖P − P·B₁:ℓᵀ·B₁:ℓ‖₂ for the probe block P (non-destructive).
// The probe residual is tiny (ℓ_inc×n), so the spectral norm estimate is
// cheap relative to the sampling GEMMs.
double probe_error_estimate(ConstMatrixView<double> probe,
                            ConstMatrixView<double> basis, PhaseFlops& flops) {
  const index_t li = probe.rows();
  const index_t n = probe.cols();
  const index_t l = basis.rows();
  Matrix<double> resid = Matrix<double>::copy_of(probe);
  if (l > 0) {
    Matrix<double> coeff(li, l);
    blas::gemm(Op::NoTrans, Op::Trans, 1.0, probe, basis, 0.0, coeff.view());
    blas::gemm(Op::NoTrans, Op::NoTrans, -1.0,
               ConstMatrixView<double>(coeff.view()), basis, 1.0,
               resid.view());
    flops.orth_iter += 2.0 * flops::gemm(li, n, l);
  }
  return norm2_est(ConstMatrixView<double>(resid.view()), 1e-6, index_t{100});
}

// Next ℓ_inc by linear interpolation of log ε̃ against ℓ (paper §10's
// "simple linear interpolation of the previous two steps").
index_t interpolated_inc(const std::vector<AdaptiveStep>& trace,
                         double target_eps, const AdaptiveOptions& opts) {
  const std::size_t t = trace.size();
  if (t < 2) return opts.l_inc;
  const auto& s1 = trace[t - 2];
  const auto& s2 = trace[t - 1];
  if (!(s2.err_est > 0) || !(s1.err_est > 0) || s2.err_est >= s1.err_est ||
      s2.l <= s1.l) {
    return opts.l_inc;  // not converging monotonically; stay static
  }
  const double slope = (std::log(s2.err_est) - std::log(s1.err_est)) /
                       double(s2.l - s1.l);
  const double l_star =
      double(s2.l) + (std::log(target_eps) - std::log(s2.err_est)) / slope;
  const double raw = std::ceil(l_star - double(s2.l));
  const double clamped =
      std::min(double(opts.inc_max), std::max(double(opts.inc_min), raw));
  return static_cast<index_t>(clamped);
}

}  // namespace

AdaptiveResult adaptive_sample(ConstMatrixView<double> a,
                               const AdaptiveOptions& opts) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m == 0 || n == 0)
    throw std::invalid_argument("adaptive_sample: empty matrix");
  if (opts.epsilon <= 0)
    throw std::invalid_argument("adaptive_sample: epsilon must be positive");
  if (opts.l_init <= 0 || opts.l_inc <= 0)
    throw std::invalid_argument("adaptive_sample: l_init/l_inc must be positive");
  const index_t l_cap =
      (opts.l_max > 0) ? std::min(opts.l_max, std::min(m, n))
                       : std::min(m, n);

  AdaptiveResult res;
  const auto t_start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t_start)
        .count();
  };

  double target = opts.epsilon;
  if (opts.relative) target *= norm2_est(a, 1e-6, index_t{200});

  // Storage with headroom for one over-full probe block.
  Matrix<double> b(l_cap + opts.inc_max, n);
  Matrix<double> c(l_cap + opts.inc_max, m);

  index_t l = 0;
  index_t linc = std::min(opts.l_init, l_cap);
  std::uint64_t round = 0;

  // Initial sample B₀:ℓinc = Ω·A (Fig. 3 lines 2–3).
  {
    Matrix<double> omega;
    {
      PhaseTimer t(res.phases.prng, "rsvd.prng");
      omega = rng::gaussian_matrix<double>(linc, m, opts.seed + round);
      res.flops.prng += double(linc) * double(m);
    }
    PhaseTimer t(res.phases.sampling, "rsvd.sampling");
    blas::gemm(Op::NoTrans, Op::NoTrans, 1.0,
               ConstMatrixView<double>(omega.view()), a, 0.0,
               b.block(0, 0, linc, n));
    res.flops.sampling += flops::gemm(linc, n, m);
  }

  for (;;) {
    // ---- Expand: refine rows [l, l+linc) and fold them into the basis.
    const index_t k = l + linc;
    power_iteration(a, b.view(), c.view(), l, k, opts.q, opts.power_ortho,
                    &res.phases, &res.flops, &res.cholqr_fallbacks);
    {
      // Fig. 3 line 8 (also covers q = 0, where POWER did nothing).
      // Interleave BOrth and QR twice: when the fresh block is nearly
      // contained in span(B₁:ℓ) — exactly what happens after a large
      // interpolated jump near the numerical rank — the first QR
      // normalizes tiny residual rows, amplifying their remaining
      // components along the old basis by 1/‖residual‖; the second
      // BOrth+QR pass removes them ("twice is enough").
      PhaseTimer t(res.phases.orth_iter, "rsvd.orth_iter");
      auto prev = ConstMatrixView<double>(b.block(0, 0, l, n));
      auto fresh = b.block(l, 0, linc, n);
      for (int pass = 0; pass < 2; ++pass) {
        ortho::block_orth_rows(prev, fresh, /*passes=*/1);
        auto rep = ortho::orthonormalize_rows(opts.power_ortho, fresh);
        if (rep.fallback_used) res.cholqr_fallbacks++;
        res.flops.orth_iter +=
            4.0 * double(n) * double(l) * double(linc) + rep.flops;
      }
    }
    l = k;

    // ---- Choose the next increment (Fig. 3 line 11).
    linc = (opts.mode == IncMode::Interpolated)
               ? interpolated_inc(res.trace, target, opts)
               : opts.l_inc;
    const index_t inc_used = l - (res.trace.empty() ? 0 : res.trace.back().l);
    // Never let basis + probe exceed the cap (the basis must stay a
    // row-orthonormalizable ℓ ≤ min(m, n) block).
    linc = std::min(linc, l_cap - l);

    if (linc <= 0) {
      // Capacity exhausted. If the basis saturates the full row space
      // of A (ℓ = min(m, n)) the projection is exact, so the target is
      // met by construction; a user-imposed ℓ_max short of that is a
      // genuine non-convergence.
      const bool saturated = (l >= std::min(m, n));
      res.trace.push_back({l, inc_used,
                           saturated ? 0.0
                                     : (res.trace.empty()
                                            ? 0.0
                                            : res.trace.back().err_est),
                           elapsed()});
      res.converged = saturated;
      break;
    }

    // ---- Fresh probe block B_{ℓ+1:k} = Ω_new·A (lines 12–13).
    ++round;
    {
      Matrix<double> omega;
      {
        PhaseTimer t(res.phases.prng, "rsvd.prng");
        omega = rng::gaussian_matrix<double>(linc, m, opts.seed + round);
        res.flops.prng += double(linc) * double(m);
      }
      PhaseTimer t(res.phases.sampling, "rsvd.sampling");
      blas::gemm(Op::NoTrans, Op::NoTrans, 1.0,
                 ConstMatrixView<double>(omega.view()), a, 0.0,
                 b.block(l, 0, linc, n));
      res.flops.sampling += flops::gemm(linc, n, m);
    }

    // ---- Error estimate from the probe (lines 14–15).
    double est;
    {
      PhaseTimer t(res.phases.orth_iter, "rsvd.orth_iter");
      est = probe_error_estimate(
          ConstMatrixView<double>(b.block(l, 0, linc, n)),
          ConstMatrixView<double>(b.block(0, 0, l, n)), res.flops);
    }
    res.trace.push_back({l, inc_used, est, elapsed()});

    if (est <= target) {
      res.converged = true;
      break;
    }
    if (l >= l_cap) break;
  }

  res.basis.resize(l, n);
  res.basis.view().copy_from(ConstMatrixView<double>(b.block(0, 0, l, n)));
  return res;
}

FixedRankResult fixed_accuracy(ConstMatrixView<double> a,
                               const AdaptiveOptions& opts) {
  AdaptiveResult ad = adaptive_sample(a, opts);
  const index_t k = ad.basis.rows();
  FixedRankResult res =
      finish_from_sample(a, ConstMatrixView<double>(ad.basis.view()), k);
  // Merge the adaptive phase accounting into the final result.
  res.phases += ad.phases;
  res.flops.prng += ad.flops.prng;
  res.flops.sampling += ad.flops.sampling;
  res.flops.gemm_iter += ad.flops.gemm_iter;
  res.flops.orth_iter += ad.flops.orth_iter;
  res.cholqr_fallbacks += ad.cholqr_fallbacks;
  return res;
}

}  // namespace randla::rsvd
