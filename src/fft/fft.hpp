// fft.hpp — radix-2 FFT and the FFT-based sampling operator.
//
// Stands in for cuFFT. The paper's "full FFT sampling" computes the full
// transform of (a sign-flipped copy of) A along the sampled dimension,
// padded to the next power of two, then keeps ℓ randomly selected rows.
// We use the Hartley variant (DHT = Re(F) − Im(F), orthogonal up to
// scaling) so the sampled matrix stays real while keeping the same
// O(mn·log m) flop class and access pattern as a complex FFT.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace randla::fft {

/// Smallest power of two ≥ n (the paper pads A the same way for cuFFT).
index_t next_pow2(index_t n);

/// In-place iterative radix-2 complex FFT; n must be a power of two.
/// `inverse` applies the conjugate transform scaled by 1/n.
void fft_inplace(std::complex<double>* data, index_t n, bool inverse = false);

/// Real-input discrete Hartley transform of length n (power of two),
/// computed via one complex FFT: H(x)_k = Re(F_k) − Im(F_k). Scaled by
/// 1/√n so the transform matrix is orthogonal.
void dht_inplace(double* data, index_t n);

/// Plan-style helper owning the scratch buffer for repeated column
/// transforms of the same length.
class DhtPlan {
 public:
  explicit DhtPlan(index_t n);
  index_t length() const { return n_; }
  /// y = DHT of x zero-padded from `len` to the plan length.
  void transform_padded(const double* x, index_t len, double* y);

 private:
  index_t n_;
  std::vector<std::complex<double>> work_;
};

/// Configuration of the randomized FFT (SRFT-style) sampling operator
/// Ω = S·H·D: D random ±1 signs, H the orthogonal DHT (full transform of
/// the padded dimension), S selection of ℓ random rows.
struct FftSampler {
  index_t padded = 0;              ///< power-of-two transform length
  std::vector<double> signs;       ///< D: one sign per input row
  std::vector<index_t> selected;   ///< S: ℓ selected transform rows
};

/// Build the sampling operator for inputs of length `dim`, sampling `l`
/// rows, seeded deterministically.
FftSampler make_fft_sampler(index_t dim, index_t l, std::uint64_t seed);

/// Row sampling of the paper's Fig. 8(a): B = Ω·A (ℓ×n), transforming
/// every column of A (length m, padded) and keeping the selected rows.
template <class Real>
Matrix<Real> fft_sample_rows(ConstMatrixView<Real> a, index_t l,
                             std::uint64_t seed);

/// Column sampling of Fig. 8(b): B = Ω·Aᵀ (ℓ×m), transforming every row
/// of A (length n, padded) and keeping the selected entries.
template <class Real>
Matrix<Real> fft_sample_cols(ConstMatrixView<Real> a, index_t l,
                             std::uint64_t seed);

}  // namespace randla::fft
