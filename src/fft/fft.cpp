#include "fft/fft.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "rng/gaussian.hpp"
#include "rng/philox.hpp"

namespace randla::fft {

index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::complex<double>* data, index_t n, bool inverse) {
  if (n <= 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft_inplace: length must be a power of two");

  // Bit-reversal permutation.
  for (index_t i = 1, j = 0; i < n; ++i) {
    index_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson–Lanczos butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (index_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / double(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (index_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (index_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / double(n);
    for (index_t i = 0; i < n; ++i) data[i] *= inv_n;
  }
}

void dht_inplace(double* data, index_t n) {
  thread_local std::vector<std::complex<double>> work;
  work.assign(static_cast<std::size_t>(n), {0.0, 0.0});
  for (index_t i = 0; i < n; ++i) work[static_cast<std::size_t>(i)] = data[i];
  fft_inplace(work.data(), n, false);
  const double scale = 1.0 / std::sqrt(double(n));
  for (index_t i = 0; i < n; ++i) {
    const auto& w = work[static_cast<std::size_t>(i)];
    data[i] = scale * (w.real() - w.imag());
  }
}

DhtPlan::DhtPlan(index_t n) : n_(n) {
  if (n <= 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("DhtPlan: length must be a power of two");
  work_.resize(static_cast<std::size_t>(n));
}

void DhtPlan::transform_padded(const double* x, index_t len, double* y) {
  assert(len <= n_);
  for (index_t i = 0; i < len; ++i)
    work_[static_cast<std::size_t>(i)] = {x[i], 0.0};
  for (index_t i = len; i < n_; ++i) work_[static_cast<std::size_t>(i)] = {0.0, 0.0};
  fft_inplace(work_.data(), n_, false);
  const double scale = 1.0 / std::sqrt(double(n_));
  for (index_t i = 0; i < n_; ++i) {
    const auto& w = work_[static_cast<std::size_t>(i)];
    y[i] = scale * (w.real() - w.imag());
  }
}

FftSampler make_fft_sampler(index_t dim, index_t l, std::uint64_t seed) {
  FftSampler s;
  s.padded = next_pow2(dim);
  if (l > s.padded)
    throw std::invalid_argument("make_fft_sampler: l exceeds padded length");
  s.signs.resize(static_cast<std::size_t>(dim));
  rng::Philox4x32 g(seed, 0xD5u);
  for (auto& v : s.signs) v = (g.next_u32() & 1u) ? 1.0 : -1.0;
  s.selected = rng::sample_without_replacement(s.padded, l, seed ^ 0x5E1Eu);
  return s;
}

template <class Real>
Matrix<Real> fft_sample_rows(ConstMatrixView<Real> a, index_t l,
                             std::uint64_t seed) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const FftSampler s = make_fft_sampler(m, l, seed);
  // √(p/ℓ) rescaling keeps E[‖Ωx‖²] = ‖x‖², so downstream error
  // estimates are on the same scale as Gaussian sampling.
  const double rescale = std::sqrt(double(s.padded) / double(l));

  DhtPlan plan(s.padded);
  std::vector<double> in(static_cast<std::size_t>(m));
  std::vector<double> out(static_cast<std::size_t>(s.padded));
  Matrix<Real> b(l, n);
  for (index_t j = 0; j < n; ++j) {
    const Real* col = a.col_ptr(j);
    for (index_t i = 0; i < m; ++i)
      in[static_cast<std::size_t>(i)] =
          s.signs[static_cast<std::size_t>(i)] * double(col[i]);
    plan.transform_padded(in.data(), m, out.data());
    for (index_t i = 0; i < l; ++i)
      b(i, j) = static_cast<Real>(
          rescale * out[static_cast<std::size_t>(s.selected[static_cast<std::size_t>(i)])]);
  }
  return b;
}

template <class Real>
Matrix<Real> fft_sample_cols(ConstMatrixView<Real> a, index_t l,
                             std::uint64_t seed) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const FftSampler s = make_fft_sampler(n, l, seed);
  const double rescale = std::sqrt(double(s.padded) / double(l));

  DhtPlan plan(s.padded);
  std::vector<double> in(static_cast<std::size_t>(n));
  std::vector<double> out(static_cast<std::size_t>(s.padded));
  Matrix<Real> b(l, m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j)
      in[static_cast<std::size_t>(j)] =
          s.signs[static_cast<std::size_t>(j)] * double(a(i, j));
    plan.transform_padded(in.data(), n, out.data());
    for (index_t r = 0; r < l; ++r)
      b(r, i) = static_cast<Real>(
          rescale * out[static_cast<std::size_t>(s.selected[static_cast<std::size_t>(r)])]);
  }
  return b;
}

template Matrix<float> fft_sample_rows<float>(ConstMatrixView<float>, index_t,
                                              std::uint64_t);
template Matrix<double> fft_sample_rows<double>(ConstMatrixView<double>,
                                                index_t, std::uint64_t);
template Matrix<float> fft_sample_cols<float>(ConstMatrixView<float>, index_t,
                                              std::uint64_t);
template Matrix<double> fft_sample_cols<double>(ConstMatrixView<double>,
                                                index_t, std::uint64_t);

}  // namespace randla::fft
