// breaker.hpp — client-side resilience primitives: a per-endpoint
// circuit breaker and deterministic exponential backoff with full
// jitter (DESIGN.md §10).
//
// The breaker is the classic three-state machine:
//
//   Closed ──(failure_threshold consecutive failures)──▶ Open
//   Open ──(open_cooldown_s elapsed)──▶ HalfOpen
//   HalfOpen ──success──▶ Closed          HalfOpen ──failure──▶ Open
//
// Time is passed in by the caller (seconds on any monotonic base), so
// state transitions are unit-testable without sleeping. Busy replies
// are *successes* from the breaker's point of view — the server is
// alive and talking — only transport/protocol failures trip it.
//
// Backoff follows the AWS "full jitter" scheme: attempt n sleeps
// uniform(0, min(max, base·mult^n)) so a thundering herd of retrying
// clients decorrelates. The jitter draw is Philox-keyed on
// (seed, attempt) — deterministic per client, independent across them.
#pragma once

#include <cstdint>
#include <mutex>

namespace randla::fault {

struct BreakerOptions {
  int failure_threshold = 5;     ///< consecutive failures to trip Open
  double open_cooldown_s = 0.5;  ///< Open → HalfOpen delay
};

enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };
const char* breaker_state_name(BreakerState s);

/// Thread-safe: callers may share one breaker across threads (the
/// cluster router's per-shard breakers are consulted from probe and
/// forward paths alike). All state sits behind one mutex, so a HalfOpen
/// breaker admits exactly ONE concurrent probe — the old check-then-set
/// on a plain bool let every racing caller through, stampeding a
/// recovering endpoint. Copyable (net::Client re-options its breaker by
/// assignment); copying snapshots the source's state, it does not share
/// it. `now_s` is any monotonically nondecreasing clock in seconds.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = {}) : opts_(opts) {}
  CircuitBreaker(const CircuitBreaker& o);
  CircuitBreaker& operator=(const CircuitBreaker& o);

  /// May this call proceed? Open transitions to HalfOpen (and admits
  /// exactly one probe) once the cooldown has elapsed.
  bool allow(double now_s);
  void record_success();
  void record_failure(double now_s);

  BreakerState state(double now_s) const;
  int consecutive_failures() const;
  /// Seconds until an Open breaker admits a probe (0 when not Open).
  double retry_in(double now_s) const;

  const BreakerOptions& options() const { return opts_; }

 private:
  BreakerOptions opts_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  int failures_ = 0;
  double opened_at_s_ = 0;
  bool probe_inflight_ = false;
};

struct BackoffOptions {
  double base_s = 0.02;      ///< first retry's backoff cap
  double max_s = 1.0;        ///< ceiling on any backoff
  double multiplier = 2.0;   ///< exponential growth per attempt
};

/// Full-jitter delay before retry `attempt` (0-based): a deterministic
/// uniform draw in [0, min(max_s, base_s·multiplier^attempt)).
double backoff_delay_s(const BackoffOptions& opts, int attempt,
                       std::uint64_t seed);

}  // namespace randla::fault
