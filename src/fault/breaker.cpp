#include "fault/breaker.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "rng/philox.hpp"

namespace randla::fault {

namespace {

/// Breaker state changes land in the flight recorder (a = new state,
/// b = old state) so a postmortem shows when an endpoint was declared
/// dead relative to the jobs that failed around it.
void note_transition(BreakerState to, BreakerState from) {
  obs::Recorder::global().record(obs::EventKind::BreakerTransition, 0, 0,
                                 static_cast<std::int64_t>(to),
                                 static_cast<std::int64_t>(from),
                                 breaker_state_name(to));
}

}  // namespace

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

bool CircuitBreaker::allow(double now_s) {
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now_s - opened_at_s_ < opts_.open_cooldown_s) return false;
      state_ = BreakerState::HalfOpen;
      note_transition(BreakerState::HalfOpen, BreakerState::Open);
      probe_inflight_ = false;
      [[fallthrough]];
    case BreakerState::HalfOpen:
      // One probe at a time: the first caller through gets to test the
      // endpoint; the verdict arrives via record_success/failure.
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  failures_ = 0;
  probe_inflight_ = false;
  if (state_ != BreakerState::Closed)
    note_transition(BreakerState::Closed, state_);
  state_ = BreakerState::Closed;
}

void CircuitBreaker::record_failure(double now_s) {
  probe_inflight_ = false;
  if (state_ == BreakerState::HalfOpen) {
    // Failed probe: straight back to Open, restart the cooldown.
    state_ = BreakerState::Open;
    opened_at_s_ = now_s;
    note_transition(BreakerState::Open, BreakerState::HalfOpen);
    return;
  }
  if (++failures_ >= opts_.failure_threshold &&
      state_ == BreakerState::Closed) {
    state_ = BreakerState::Open;
    opened_at_s_ = now_s;
    note_transition(BreakerState::Open, BreakerState::Closed);
  }
}

BreakerState CircuitBreaker::state(double now_s) const {
  if (state_ == BreakerState::Open &&
      now_s - opened_at_s_ >= opts_.open_cooldown_s)
    return BreakerState::HalfOpen;
  return state_;
}

double CircuitBreaker::retry_in(double now_s) const {
  if (state_ != BreakerState::Open) return 0;
  return std::max(0.0, opts_.open_cooldown_s - (now_s - opened_at_s_));
}

double backoff_delay_s(const BackoffOptions& opts, int attempt,
                       std::uint64_t seed) {
  double cap = opts.base_s;
  for (int i = 0; i < attempt && cap < opts.max_s; ++i)
    cap *= opts.multiplier;
  cap = std::min(cap, opts.max_s);
  // Stream 0 is reserved for injector kinds' +1 offset; use a distinct
  // constant so a client sharing a seed with an injector stays
  // uncorrelated with it.
  const auto block = rng::Philox4x32::at(
      seed, 0x626B6F66ull /* "bkof" */, static_cast<std::uint64_t>(attempt));
  const std::uint64_t bits =
      ((static_cast<std::uint64_t>(block[0]) << 32) | block[1]) >> 11;
  const double u = static_cast<double>(bits) * (1.0 / 9007199254740992.0);
  return u * cap;
}

}  // namespace randla::fault
