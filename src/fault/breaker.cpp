#include "fault/breaker.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "rng/philox.hpp"

namespace randla::fault {

namespace {

/// Breaker state changes land in the flight recorder (a = new state,
/// b = old state) so a postmortem shows when an endpoint was declared
/// dead relative to the jobs that failed around it.
void note_transition(BreakerState to, BreakerState from) {
  obs::Recorder::global().record(obs::EventKind::BreakerTransition, 0, 0,
                                 static_cast<std::int64_t>(to),
                                 static_cast<std::int64_t>(from),
                                 breaker_state_name(to));
}

}  // namespace

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const CircuitBreaker& o) {
  std::lock_guard<std::mutex> lk(o.mu_);
  opts_ = o.opts_;
  state_ = o.state_;
  failures_ = o.failures_;
  opened_at_s_ = o.opened_at_s_;
  probe_inflight_ = o.probe_inflight_;
}

CircuitBreaker& CircuitBreaker::operator=(const CircuitBreaker& o) {
  if (this == &o) return *this;
  std::scoped_lock lk(mu_, o.mu_);
  opts_ = o.opts_;
  state_ = o.state_;
  failures_ = o.failures_;
  opened_at_s_ = o.opened_at_s_;
  probe_inflight_ = o.probe_inflight_;
  return *this;
}

bool CircuitBreaker::allow(double now_s) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now_s - opened_at_s_ < opts_.open_cooldown_s) return false;
      state_ = BreakerState::HalfOpen;
      note_transition(BreakerState::HalfOpen, BreakerState::Open);
      probe_inflight_ = false;
      [[fallthrough]];
    case BreakerState::HalfOpen:
      // One probe at a time: the first caller through gets to test the
      // endpoint; the verdict arrives via record_success/failure. The
      // check-and-claim happens under mu_, so concurrent callers racing
      // into a HalfOpen breaker admit exactly one probe — the rest stay
      // held back as if still Open.
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  failures_ = 0;
  probe_inflight_ = false;
  if (state_ != BreakerState::Closed)
    note_transition(BreakerState::Closed, state_);
  state_ = BreakerState::Closed;
}

void CircuitBreaker::record_failure(double now_s) {
  std::lock_guard<std::mutex> lk(mu_);
  probe_inflight_ = false;
  if (state_ == BreakerState::HalfOpen) {
    // Failed probe: straight back to Open, restart the cooldown.
    state_ = BreakerState::Open;
    opened_at_s_ = now_s;
    note_transition(BreakerState::Open, BreakerState::HalfOpen);
    return;
  }
  if (++failures_ >= opts_.failure_threshold &&
      state_ == BreakerState::Closed) {
    state_ = BreakerState::Open;
    opened_at_s_ = now_s;
    note_transition(BreakerState::Open, BreakerState::Closed);
  }
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failures_;
}

BreakerState CircuitBreaker::state(double now_s) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::Open &&
      now_s - opened_at_s_ >= opts_.open_cooldown_s)
    return BreakerState::HalfOpen;
  return state_;
}

double CircuitBreaker::retry_in(double now_s) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ != BreakerState::Open) return 0;
  return std::max(0.0, opts_.open_cooldown_s - (now_s - opened_at_s_));
}

double backoff_delay_s(const BackoffOptions& opts, int attempt,
                       std::uint64_t seed) {
  double cap = opts.base_s;
  for (int i = 0; i < attempt && cap < opts.max_s; ++i)
    cap *= opts.multiplier;
  cap = std::min(cap, opts.max_s);
  // Stream 0 is reserved for injector kinds' +1 offset; use a distinct
  // constant so a client sharing a seed with an injector stays
  // uncorrelated with it.
  const auto block = rng::Philox4x32::at(
      seed, 0x626B6F66ull /* "bkof" */, static_cast<std::uint64_t>(attempt));
  const std::uint64_t bits =
      ((static_cast<std::uint64_t>(block[0]) << 32) | block[1]) >> 11;
  const double u = static_cast<double>(bits) * (1.0 / 9007199254740992.0);
  return u * cap;
}

}  // namespace randla::fault
