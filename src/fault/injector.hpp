// injector.hpp — deterministic fault-injection plane (DESIGN.md §10).
//
// A FaultInjector is the single decision oracle every layer consults at
// its injection sites: the scheduler before running a job (device death,
// worker hangs, artificial latency), sim::Device before a task
// (transient stalls), and net::Server at frame boundaries (connection
// resets, corrupted/truncated frames, delayed writes). Decisions are
// pure functions of (seed, kind, per-kind decision index) through the
// library's Philox4x32 block cipher, so the same seed and schedule
// reproduce the identical injection sequence per kind regardless of
// thread interleaving across kinds — chaos runs are replayable.
//
// Schedules come from a tiny DSL (grammar in DESIGN.md §10):
//
//   schedule  := entry ("," entry)*
//   entry     := kind "@" probability        Bernoulli per decision
//              | kind (":" step)+            fire at exact 1-based
//                                            per-kind decision indices
//
//   e.g.  "device_fail@0.05,conn_reset@0.02"  or  "device_fail:3:10"
//
// Every fired injection bumps a `fault_injected_total{kind="…"}`
// counter in the global obs registry; the counters are registered
// eagerly at construction so a chaos run's Stats scrape always carries
// the full fault.* series even before the first injection.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace randla::fault {

enum class FaultKind : std::uint8_t {
  DeviceFail = 0,    ///< simulated device dies at job pickup
  DeviceStall,       ///< sim::Device sleeps before running a task
  WorkerHang,        ///< job wedges until the watchdog cancels it
  JobLatency,        ///< artificial delay before a job executes
  ConnReset,         ///< server drops the connection at a frame boundary
  FrameCorrupt,      ///< server flips a byte in an outgoing frame
  FrameTruncate,     ///< server sends half a frame, then closes
  WriteDelay,        ///< server stalls before flushing a write
};
inline constexpr int kNumFaultKinds = 8;

const char* fault_kind_name(FaultKind k);
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// Parsed schedule plus the magnitude knobs injections use. Magnitudes
/// are deliberately config fields, not DSL syntax: the DSL decides
/// *when*, the config decides *how hard*.
struct FaultConfig {
  std::array<double, kNumFaultKinds> probability{};  ///< 0 = never
  std::array<std::vector<std::uint64_t>, kNumFaultKinds> steps;  ///< 1-based
  double stall_ms = 20;     ///< DeviceStall sleep
  double latency_ms = 10;   ///< JobLatency sleep
  double write_delay_ms = 15;  ///< WriteDelay stall
  double hang_cap_s = 2.0;  ///< WorkerHang gives up if no watchdog fires

  bool empty() const;
};

/// Parse the schedule DSL; nullopt (with a diagnostic in *err) on any
/// malformed entry. An empty string parses to an all-zero config.
std::optional<FaultConfig> parse_schedule(std::string_view dsl,
                                          std::string* err = nullptr);

class FaultInjector {
 public:
  FaultInjector(FaultConfig cfg, std::uint64_t seed);

  /// One decision at an injection site: true = inject now. Thread-safe;
  /// the n-th decision for a kind is deterministic in (seed, kind, n).
  bool fire(FaultKind k);

  /// Master switch (e.g. a chaos driver quiescing faults before its
  /// final stats scrape). Disabled decisions still consume indices so a
  /// re-enabled injector stays on its deterministic sequence.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  const FaultConfig& config() const { return cfg_; }
  std::uint64_t seed() const { return seed_; }

  /// Decisions taken / injections fired so far, per kind and total.
  std::uint64_t decisions(FaultKind k) const;
  std::uint64_t injected(FaultKind k) const;
  std::uint64_t injected_total() const;

 private:
  FaultConfig cfg_;
  std::uint64_t seed_;
  std::atomic<bool> enabled_{true};
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> decisions_{};
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> injected_{};
  std::array<obs::Counter, kNumFaultKinds> injected_counter_;
  obs::Counter decisions_counter_;
};

using InjectorPtr = std::shared_ptr<FaultInjector>;

/// Build an injector from a DSL schedule; nullptr on parse failure
/// (diagnostic in *err) and for an empty/no-op schedule.
InjectorPtr make_injector(std::string_view dsl, std::uint64_t seed,
                          std::string* err = nullptr);

}  // namespace randla::fault
