#include "fault/injector.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/recorder.hpp"
#include "rng/philox.hpp"

namespace randla::fault {

namespace {

constexpr const char* kKindNames[kNumFaultKinds] = {
    "device_fail", "device_stall", "worker_hang",   "job_latency",
    "conn_reset",  "frame_corrupt", "frame_truncate", "write_delay",
};

/// Uniform double in (0,1) from the Philox block at (seed, kind, index):
/// the same 53-bit construction Philox4x32::next_uniform uses, evaluated
/// statelessly so concurrent sites need no shared generator.
double uniform_at(std::uint64_t seed, FaultKind k, std::uint64_t index) {
  const auto block = rng::Philox4x32::at(
      seed, static_cast<std::uint64_t>(k) + 1, index);
  const std::uint64_t bits =
      ((static_cast<std::uint64_t>(block[0]) << 32) | block[1]) >> 11;
  return (static_cast<double>(bits) + 0.5) * (1.0 / 9007199254740992.0);
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumFaultKinds ? kKindNames[i] : "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (int i = 0; i < kNumFaultKinds; ++i)
    if (name == kKindNames[i]) return static_cast<FaultKind>(i);
  return std::nullopt;
}

bool FaultConfig::empty() const {
  for (int i = 0; i < kNumFaultKinds; ++i)
    if (probability[static_cast<std::size_t>(i)] > 0 ||
        !steps[static_cast<std::size_t>(i)].empty())
      return false;
  return true;
}

std::optional<FaultConfig> parse_schedule(std::string_view dsl,
                                          std::string* err) {
  auto bad = [&](const std::string& why) -> std::optional<FaultConfig> {
    if (err) *err = why;
    return std::nullopt;
  };
  FaultConfig cfg;
  std::size_t pos = 0;
  while (pos < dsl.size()) {
    std::size_t end = dsl.find(',', pos);
    if (end == std::string_view::npos) end = dsl.size();
    const std::string_view entry = dsl.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t at = entry.find('@');
    const std::size_t colon = entry.find(':');
    if (at == std::string_view::npos && colon == std::string_view::npos)
      return bad("entry '" + std::string(entry) +
                 "' needs '@probability' or ':step'");
    const std::size_t split = std::min(at, colon);
    const std::string_view name = entry.substr(0, split);
    const auto kind = fault_kind_from_name(name);
    if (!kind) return bad("unknown fault kind '" + std::string(name) + "'");
    const auto ki = static_cast<std::size_t>(*kind);

    if (at != std::string_view::npos) {
      if (colon != std::string_view::npos)
        return bad("entry '" + std::string(entry) + "' mixes '@' and ':'");
      const std::string num(entry.substr(at + 1));
      char* endp = nullptr;
      const double p = std::strtod(num.c_str(), &endp);
      if (num.empty() || endp != num.c_str() + num.size() || p < 0 || p > 1)
        return bad("bad probability in '" + std::string(entry) +
                   "' (want 0..1)");
      cfg.probability[ki] = p;
    } else {
      std::string_view rest = entry.substr(colon);
      while (!rest.empty()) {
        rest.remove_prefix(1);  // ':'
        std::size_t stop = rest.find(':');
        if (stop == std::string_view::npos) stop = rest.size();
        const std::string num(rest.substr(0, stop));
        char* endp = nullptr;
        const unsigned long long s = std::strtoull(num.c_str(), &endp, 10);
        if (num.empty() || endp != num.c_str() + num.size() || s == 0)
          return bad("bad step in '" + std::string(entry) +
                     "' (want positive integers)");
        cfg.steps[ki].push_back(s);
        rest.remove_prefix(stop);
      }
      std::sort(cfg.steps[ki].begin(), cfg.steps[ki].end());
    }
  }
  return cfg;
}

FaultInjector::FaultInjector(FaultConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), seed_(seed) {
  auto& g = obs::Registry::global();
  for (int i = 0; i < kNumFaultKinds; ++i)
    injected_counter_[static_cast<std::size_t>(i)] =
        g.counter(std::string("fault_injected_total{kind=\"") + kKindNames[i] +
                      "\"}",
                  "fault injections fired, by kind");
  decisions_counter_ =
      g.counter("fault_decisions_total", "injection sites consulted");
}

bool FaultInjector::fire(FaultKind k) {
  const auto ki = static_cast<std::size_t>(k);
  // The 1-based decision index; consumed even while disabled so the
  // sequence stays aligned across enable/disable cycles.
  const std::uint64_t n =
      decisions_[ki].fetch_add(1, std::memory_order_relaxed) + 1;
  decisions_counter_.inc();
  if (!enabled_.load(std::memory_order_relaxed)) return false;

  bool hit = false;
  if (cfg_.probability[ki] > 0)
    hit = uniform_at(seed_, k, n) < cfg_.probability[ki];
  if (!hit && !cfg_.steps[ki].empty())
    hit = std::binary_search(cfg_.steps[ki].begin(), cfg_.steps[ki].end(), n);
  if (hit) {
    injected_[ki].fetch_add(1, std::memory_order_relaxed);
    injected_counter_[ki].inc();
    obs::Recorder::global().record(obs::EventKind::FaultInjected, 0, 0,
                                   static_cast<std::int64_t>(ki),
                                   static_cast<std::int64_t>(n),
                                   kKindNames[ki]);
  }
  return hit;
}

std::uint64_t FaultInjector::decisions(FaultKind k) const {
  return decisions_[static_cast<std::size_t>(k)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultKind k) const {
  return injected_[static_cast<std::size_t>(k)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& c : injected_)
    total += c.load(std::memory_order_relaxed);
  return total;
}

InjectorPtr make_injector(std::string_view dsl, std::uint64_t seed,
                          std::string* err) {
  auto cfg = parse_schedule(dsl, err);
  if (!cfg || cfg->empty()) return nullptr;
  return std::make_shared<FaultInjector>(*cfg, seed);
}

}  // namespace randla::fault
