// tsqr.hpp — communication-avoiding tall-skinny QR (Demmel, Grigori,
// Hoemmen, Langou [5]), the orthogonalization the paper names as current
// research for hardening random sampling (§4, §11).
//
// The row blocks are factored independently and their R factors combined
// pairwise up a binary reduction tree — one reduction instead of the
// CholQR Gram-reduce or the ℓ synchronizations of Householder QR, and
// unconditionally stable (no Gram matrix squaring of the condition
// number).
#pragma once

#include "la/matrix.hpp"
#include "ortho/ortho.hpp"

namespace randla::ortho {

/// Orthonormalize the columns of tall-skinny `a` (m ≥ n) in place via a
/// binary TSQR reduction tree. If `r` is non-empty (n×n) it receives the
/// triangular factor with A_in = Q·R up to the usual sign freedom.
/// `leaf_rows` bounds the leaf block height (0 = choose automatically,
/// at least 2n rows per leaf).
template <class Real>
OrthoReport tsqr(MatrixView<Real> a, MatrixView<Real> r = {},
                 index_t leaf_rows = 0);

/// Row variant for the short-wide sampled matrices (LQ adaptation, like
/// ortho::orthonormalize_rows): factors the transpose through the tree.
template <class Real>
OrthoReport tsqr_rows(MatrixView<Real> b, index_t leaf_rows = 0);

}  // namespace randla::ortho
