#include "ortho/tsqr.hpp"

#include <algorithm>

#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"
#include "la/parallel.hpp"

namespace randla::ortho {

namespace {

// Recursive TSQR: orthonormalize the columns of `a` in place, writing
// the n×n triangular factor into `r`. Splits rows until a leaf fits
// `leaf_rows`, then combines pairwise.
template <class Real>
void tsqr_rec(MatrixView<Real> a, MatrixView<Real> r, index_t leaf_rows) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m <= leaf_rows || m < 2 * n) {
    lapack::qr_explicit(a, r);
    return;
  }
  // Split at a row multiple of the leaf size when possible so the tree
  // stays balanced.
  const index_t half = m / 2;
  auto top = a.rows_range(0, half);
  auto bot = a.rows_range(half, m);

  Matrix<Real> r1(n, n);
  Matrix<Real> r2(n, n);
  // The two subtrees touch disjoint row ranges, so they run as a 2-way
  // fork on the worker pool when it pays (a GEMM inside a subtree then
  // degrades to serial instead of deadlocking — see parallel.hpp). The
  // result does not depend on execution order, so the factorization
  // stays reproducible at any thread count.
  if (blas_num_threads() > 1 && m >= 4 * leaf_rows) {
    MatrixView<Real> halves[2] = {top, bot};
    MatrixView<Real> rs[2] = {r1.view(), r2.view()};
    parallel_ranges(2, 1, [&](index_t b0, index_t b1) {
      for (index_t t = b0; t < b1; ++t) tsqr_rec(halves[t], rs[t], leaf_rows);
    });
  } else {
    tsqr_rec(top, r1.view(), leaf_rows);
    tsqr_rec(bot, r2.view(), leaf_rows);
  }

  // Combine: QR of the stacked (2n×n) triangles.
  Matrix<Real> stacked(2 * n, n);
  stacked.view().rows_range(0, n).copy_from(ConstMatrixView<Real>(r1.view()));
  stacked.view().rows_range(n, 2 * n).copy_from(
      ConstMatrixView<Real>(r2.view()));
  lapack::qr_explicit(stacked.view(), r);

  // Propagate the combine factor into the explicit Q blocks:
  // Q_top ← Q_top·Qc(0:n, :), Q_bot ← Q_bot·Qc(n:2n, :).
  Matrix<Real> tmp_top = Matrix<Real>::copy_of(ConstMatrixView<Real>(top));
  blas::gemm(Op::NoTrans, Op::NoTrans, Real(1),
             ConstMatrixView<Real>(tmp_top.view()),
             ConstMatrixView<Real>(stacked.view().rows_range(0, n)), Real(0),
             top);
  Matrix<Real> tmp_bot = Matrix<Real>::copy_of(ConstMatrixView<Real>(bot));
  blas::gemm(Op::NoTrans, Op::NoTrans, Real(1),
             ConstMatrixView<Real>(tmp_bot.view()),
             ConstMatrixView<Real>(stacked.view().rows_range(n, 2 * n)),
             Real(0), bot);
}

}  // namespace

template <class Real>
OrthoReport tsqr(MatrixView<Real> a, MatrixView<Real> r, index_t leaf_rows) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m < n)
    throw std::invalid_argument("tsqr: matrix must be tall (use tsqr_rows)");
  if (!r.empty() && (r.rows() != n || r.cols() != n))
    throw std::invalid_argument("tsqr: R must be n×n");

  if (leaf_rows <= 0) {
    // Default: leaves of ~8n rows, at least 2n, giving a shallow tree
    // with BLAS-3-sized leaf factorizations.
    leaf_rows = std::max<index_t>(2 * n, std::min<index_t>(8 * n, m));
  }
  leaf_rows = std::max<index_t>(leaf_rows, 2 * n);

  OrthoReport rep;
  // Leaf QRs (≈ m/leaf · geqrf(leaf, n)) + combines; charge the standard
  // 4mn² Householder volume plus the tree's 2n×n combine factors.
  rep.flops = flops::geqrf(m, n) + flops::orgqr(m, n);
  if (r.empty()) {
    Matrix<Real> rr(n, n);
    tsqr_rec(a, rr.view(), leaf_rows);
  } else {
    tsqr_rec(a, r, leaf_rows);
  }
  return rep;
}

template <class Real>
OrthoReport tsqr_rows(MatrixView<Real> b, index_t leaf_rows) {
  const index_t l = b.rows();
  const index_t n = b.cols();
  if (l > n)
    throw std::invalid_argument("tsqr_rows: matrix must be short-wide");
  Matrix<Real> bt = transposed(ConstMatrixView<Real>(b));
  OrthoReport rep = tsqr(bt.view(), MatrixView<Real>{}, leaf_rows);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < l; ++i) b(i, j) = bt(j, i);
  return rep;
}

#define RANDLA_INSTANTIATE_TSQR(Real)                                     \
  template OrthoReport tsqr<Real>(MatrixView<Real>, MatrixView<Real>,     \
                                  index_t);                               \
  template OrthoReport tsqr_rows<Real>(MatrixView<Real>, index_t);

RANDLA_INSTANTIATE_TSQR(float)
RANDLA_INSTANTIATE_TSQR(double)

#undef RANDLA_INSTANTIATE_TSQR

}  // namespace randla::ortho
