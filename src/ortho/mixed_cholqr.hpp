// mixed_cholqr.hpp — mixed-precision Cholesky QR (Yamazaki, Tomov,
// Dongarra [23]), the stabilization the paper lists for CholQR's
// breakdown on ill-conditioned inputs (§4, §11).
//
// The Gram matrix squares the condition number: in working precision u,
// plain CholQR loses all orthogonality once κ(A) ≳ u^(-1/2). Forming
// G = AᵀA and its Cholesky factor in twice the working precision pushes
// that wall out to κ(A) ≈ u⁻¹, at BLAS-3 speed and with the same single
// reduction as CholQR.
#pragma once

#include "la/matrix.hpp"
#include "ortho/ortho.hpp"

namespace randla::ortho {

/// CholQR for single-precision columns with the Gram matrix accumulated
/// and factored in double precision. Falls back to (float) Householder
/// QR if even the double-precision Cholesky breaks down.
OrthoReport cholqr_mixed_columns(MatrixView<float> a,
                                 MatrixView<float> r = {});

/// Row variant (LQ adaptation) for short-wide sampled matrices.
OrthoReport cholqr_mixed_rows(MatrixView<float> b);

}  // namespace randla::ortho
