// ortho.hpp — orthogonalization schemes (paper §4, Figures 7 and 9).
//
// The paper studies four schemes for orthonormalizing tall-skinny and
// short-wide matrices: BLAS-3 CholQR, BLAS-2 CGS, BLAS-1 MGS, and
// Householder QR, plus the block orthogonalization (BOrth) used inside
// the power iteration. Two orientations are provided:
//
//  * column variants — orthonormalize the columns of a tall-skinny m×n
//    (m ≥ n) matrix, as in Step 3's QR of A·P₁:k (Figure 7);
//  * row variants — orthonormalize the rows of a short-wide ℓ×n matrix,
//    the LQ adaptation of footnote 3 used on the sampled matrices B and
//    C inside the power iteration (Figure 9).
#pragma once

#include <cstdint>
#include <string>

#include "la/matrix.hpp"

namespace randla::ortho {

enum class Scheme : std::uint8_t {
  CholQR,   ///< Gram matrix + Cholesky + triangular solve (BLAS-3)
  CholQR2,  ///< CholQR with one full reorthogonalization (paper §6)
  CGS,      ///< classical Gram–Schmidt (BLAS-2)
  MGS,      ///< modified Gram–Schmidt (BLAS-1)
  HHQR,     ///< Householder QR (BLAS-1/2, unconditionally stable)
  TSQR,     ///< communication-avoiding QR (binary reduction tree, §11)
};

const char* scheme_name(Scheme s);

/// Outcome of an orthogonalization call.
struct OrthoReport {
  bool ok = true;              ///< false only if even the fallback failed
  bool cholesky_failed = false;  ///< CholQR Gram factorization broke down
  bool fallback_used = false;    ///< switched to HHQR after breakdown
  int passes = 1;                ///< 1, or 2 for CholQR2
  double flops = 0;              ///< flops charged (model accounting)
};

/// Orthonormalize the columns of tall-skinny `a` (m ≥ n) in place.
/// If `r` is non-empty it must be n×n and receives the triangular factor
/// with A_in = Q·R. CholQR falls back to HHQR on Cholesky breakdown
/// (paper §4's mitigation), reported in the returned OrthoReport.
template <class Real>
OrthoReport orthonormalize_columns(Scheme scheme, MatrixView<Real> a,
                                   MatrixView<Real> r = {});

/// Orthonormalize the rows of short-wide `b` (ℓ ≤ n) in place (LQ
/// adaptation): on exit B_new·B_newᵀ = I and B_in = L·B_new.
template <class Real>
OrthoReport orthonormalize_rows(Scheme scheme, MatrixView<Real> b);

/// Batched row orthonormalization: N independent short-wide panels
/// processed in one walk over the persistent worker pool. Panels run
/// concurrently (each panel's kernels degrade to serial inside its pool
/// chunk), so N small CholQR panels — each too small to engage the pool
/// alone — amortize one fork-join. Results are bitwise identical to
/// calling orthonormalize_rows on each panel in a loop at any thread
/// count, including the per-panel HHQR fallback on Cholesky breakdown.
/// `reports[i]` receives panel i's OrthoReport.
template <class Real>
void cholqr_panel_batched(Scheme scheme, MatrixView<Real>* panels,
                          index_t count, OrthoReport* reports);

/// BOrth (paper Fig. 2a lines 4 and 9): orthogonalize the rows of `b`
/// against the rows of `prev` (which must already be orthonormal):
/// B ← B − (B·prevᵀ)·prev. `passes` = 2 gives the classical
/// "twice is enough" re-orthogonalization.
template <class Real>
void block_orth_rows(ConstMatrixView<Real> prev, MatrixView<Real> b,
                     int passes = 1);

/// Column-space BOrth: B ← B − prev·(prevᵀ·B) for column-orthonormal
/// `prev`.
template <class Real>
void block_orth_columns(ConstMatrixView<Real> prev, MatrixView<Real> b,
                        int passes = 1);

/// Flop count charged for one orthonormalization (used by benches and
/// the performance model).
double scheme_flops(Scheme scheme, index_t rows, index_t cols);

}  // namespace randla::ortho
