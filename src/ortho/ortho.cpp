#include "ortho/ortho.hpp"

#include "ortho/tsqr.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/cholesky.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"
#include "la/parallel.hpp"
#include "la/profile_hooks.hpp"

namespace randla::ortho {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::CholQR:
      return "CholQR";
    case Scheme::CholQR2:
      return "CholQR2";
    case Scheme::CGS:
      return "CGS";
    case Scheme::MGS:
      return "MGS";
    case Scheme::HHQR:
      return "HHQR";
    case Scheme::TSQR:
      return "TSQR";
  }
  return "?";
}

double scheme_flops(Scheme scheme, index_t rows, index_t cols) {
  switch (scheme) {
    case Scheme::CholQR:
      return flops::cholqr(rows, cols);
    case Scheme::CholQR2:
      return 2 * flops::cholqr(rows, cols);
    case Scheme::CGS:
    case Scheme::MGS:
      return flops::gram_schmidt(rows, cols);
    case Scheme::HHQR:
    case Scheme::TSQR:
      return flops::geqrf(rows, cols) + flops::orgqr(rows, cols);
  }
  return 0;
}

namespace {

// --- column-orientation primitives -----------------------------------

// One CholQR pass: G = AᵀA, G = RᵀR, A ← A·R⁻¹. Returns false on
// Cholesky breakdown. If r_out is non-empty, accumulates R into it
// (r_out ← R·r_out so repeated passes compose).
template <class Real>
bool cholqr_cols_pass(MatrixView<Real> a, MatrixView<Real> r_out) {
  const index_t n = a.cols();
  Matrix<Real> g(n, n);
  blas::syrk(Uplo::Upper, Op::Trans, Real(1), ConstMatrixView<Real>(a), Real(0),
             g.view());
  if (lapack::potrf(Uplo::Upper, g.view()) != 0) return false;
  blas::trsm(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit, Real(1),
             ConstMatrixView<Real>(g.view()), a);
  if (!r_out.empty()) {
    blas::trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, Real(1),
               ConstMatrixView<Real>(g.view()), r_out);
  }
  return true;
}

template <class Real>
void cgs_cols(MatrixView<Real> a, MatrixView<Real> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  std::vector<Real> coeff(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    // r(0:j, j) = Q(:, 0:j)ᵀ·a_j in one gemv (BLAS-2), then a single
    // update a_j −= Q·r — this is what makes CGS BLAS-2 rather than
    // BLAS-1.
    auto q = ConstMatrixView<Real>(a.block(0, 0, m, j));
    Real* aj = a.col_ptr(j);
    if (j > 0) {
      blas::gemv(Op::Trans, Real(1), q, aj, index_t{1}, Real(0), coeff.data(),
                 index_t{1});
      blas::gemv(Op::NoTrans, Real(-1), q, coeff.data(), index_t{1}, Real(1),
                 aj, index_t{1});
    }
    const Real nrm = blas::nrm2(m, aj, index_t{1});
    if (nrm == Real(0))
      throw std::runtime_error("CGS: zero column (rank-deficient input)");
    blas::scal(m, Real(1) / nrm, aj, index_t{1});
    if (!r.empty()) {
      for (index_t i = 0; i < j; ++i) r(i, j) = coeff[static_cast<std::size_t>(i)];
      r(j, j) = nrm;
    }
  }
}

template <class Real>
void mgs_cols(MatrixView<Real> a, MatrixView<Real> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  for (index_t j = 0; j < n; ++j) {
    Real* aj = a.col_ptr(j);
    // One dot + one axpy per previous column (BLAS-1).
    for (index_t i = 0; i < j; ++i) {
      const Real* qi = a.col_ptr(i);
      const Real rij = blas::dot(m, qi, index_t{1}, aj, index_t{1});
      blas::axpy(m, -rij, qi, index_t{1}, aj, index_t{1});
      if (!r.empty()) r(i, j) = rij;
    }
    const Real nrm = blas::nrm2(m, aj, index_t{1});
    if (nrm == Real(0))
      throw std::runtime_error("MGS: zero column (rank-deficient input)");
    blas::scal(m, Real(1) / nrm, aj, index_t{1});
    if (!r.empty()) r(j, j) = nrm;
  }
}

}  // namespace

template <class Real>
OrthoReport orthonormalize_columns(Scheme scheme, MatrixView<Real> a,
                                   MatrixView<Real> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m < n)
    throw std::invalid_argument(
        "orthonormalize_columns: matrix must be tall (use the row variant)");
  if (!r.empty() && (r.rows() != n || r.cols() != n))
    throw std::invalid_argument("orthonormalize_columns: R must be n×n");

  OrthoReport rep;
  rep.flops = scheme_flops(scheme, m, n);

  switch (scheme) {
    case Scheme::CholQR:
    case Scheme::CholQR2: {
      if (!r.empty()) r.set_identity();
      if (!cholqr_cols_pass(a, r)) {
        // Paper §4: fall back to Householder QR when CholQR breaks down.
        rep.cholesky_failed = true;
        rep.fallback_used = true;
        Matrix<Real> rr(n, n);
        lapack::qr_explicit(a, rr.view());
        if (!r.empty()) r.copy_from(ConstMatrixView<Real>(rr.view()));
        return rep;
      }
      if (scheme == Scheme::CholQR2) {
        rep.passes = 2;
        if (!cholqr_cols_pass(a, r)) {
          rep.cholesky_failed = true;
          rep.fallback_used = true;
          Matrix<Real> rr(n, n);
          lapack::qr_explicit(a, rr.view());
          // R accumulated so far is stale; HHQR result replaces it only
          // approximately. Keep exactness by composing: A_in = Q·(RR·R).
          if (!r.empty()) {
            blas::trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                       Real(1), ConstMatrixView<Real>(rr.view()), r);
          }
        }
      }
      return rep;
    }
    case Scheme::CGS:
      cgs_cols(a, r);
      return rep;
    case Scheme::MGS:
      mgs_cols(a, r);
      return rep;
    case Scheme::HHQR: {
      if (!r.empty()) {
        lapack::qr_explicit(a, r);
      } else {
        Matrix<Real> rr(n, n);
        lapack::qr_explicit(a, rr.view());
      }
      return rep;
    }
    case Scheme::TSQR:
      return tsqr(a, r);
  }
  rep.ok = false;
  return rep;
}

template <class Real>
OrthoReport orthonormalize_rows(Scheme scheme, MatrixView<Real> b) {
  const index_t l = b.rows();
  const index_t n = b.cols();
  if (l > n)
    throw std::invalid_argument(
        "orthonormalize_rows: matrix must be short-wide (use the column "
        "variant)");

  OrthoReport rep;
  rep.flops = scheme_flops(scheme, n, l);  // same volume as n×ℓ columns

  switch (scheme) {
    case Scheme::CholQR:
    case Scheme::CholQR2: {
      // LQ adaptation (footnote 3): G = B·Bᵀ = L·Lᵀ, B ← L⁻¹·B.
      int passes = (scheme == Scheme::CholQR2) ? 2 : 1;
      rep.passes = passes;
      for (int p = 0; p < passes; ++p) {
        Matrix<Real> g(l, l);
        blas::syrk(Uplo::Lower, Op::NoTrans, Real(1), ConstMatrixView<Real>(b),
                   Real(0), g.view());
        if (lapack::potrf(Uplo::Lower, g.view()) != 0) {
          rep.cholesky_failed = true;
          rep.fallback_used = true;
          // HHQR fallback through the transpose.
          Matrix<Real> bt = transposed(ConstMatrixView<Real>(b));
          Matrix<Real> rr(l, l);
          lapack::qr_explicit(bt.view(), rr.view());
          for (index_t j = 0; j < n; ++j)
            for (index_t i = 0; i < l; ++i) b(i, j) = bt(j, i);
          return rep;
        }
        blas::trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, Real(1),
                   ConstMatrixView<Real>(g.view()), b);
      }
      return rep;
    }
    case Scheme::TSQR:
      return tsqr_rows(b);
    case Scheme::CGS:
    case Scheme::MGS:
    case Scheme::HHQR: {
      // Row variants operate on the transpose; HHQR/CGS/MGS of Bᵀ.
      Matrix<Real> bt = transposed(ConstMatrixView<Real>(b));
      Matrix<Real> rr(l, l);
      OrthoReport inner = orthonormalize_columns(scheme, bt.view(), rr.view());
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < l; ++i) b(i, j) = bt(j, i);
      inner.flops = rep.flops;
      return inner;
    }
  }
  rep.ok = false;
  return rep;
}

template <class Real>
void cholqr_panel_batched(Scheme scheme, MatrixView<Real>* panels,
                          index_t count, OrthoReport* reports) {
  // Validate shapes up front so nothing throws from inside a pool chunk.
  double total_flops = 0;
  for (index_t i = 0; i < count; ++i) {
    if (panels[i].rows() > panels[i].cols())
      throw std::invalid_argument(
          "cholqr_panel_batched: panels must be short-wide");
    total_flops += scheme_flops(scheme, panels[i].cols(), panels[i].rows());
  }
  la_prof::KernelScope prof("cholqr_panel_batched", total_flops);
  // One walk over the pool: panels are independent, so each pool chunk
  // runs a contiguous range of them; the kernels inside a panel see the
  // nested-parallel context and degrade to serial, which is bitwise
  // identical to the top-level call (thread-count invariance of the
  // BLAS-3 tier). The HHQR breakdown fallback stays per-panel.
  auto run_range = [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i)
      reports[i] = orthonormalize_rows(scheme, panels[i]);
  };
  if (blas_num_threads() > 1 && count > 1) {
    parallel_ranges(count, 1, run_range);
    return;
  }
  run_range(0, count);
}

template <class Real>
void block_orth_rows(ConstMatrixView<Real> prev, MatrixView<Real> b,
                     int passes) {
  if (prev.rows() == 0) return;
  assert(prev.cols() == b.cols());
  const index_t lp = prev.rows();
  const index_t lb = b.rows();
  Matrix<Real> coeff(lb, lp);
  for (int p = 0; p < passes; ++p) {
    // coeff = B·prevᵀ;  B ← B − coeff·prev.  Two GEMMs — the BLAS-3
    // block classical Gram–Schmidt of Stathopoulos & Wu.
    blas::gemm(Op::NoTrans, Op::Trans, Real(1), ConstMatrixView<Real>(b), prev,
               Real(0), coeff.view());
    blas::gemm(Op::NoTrans, Op::NoTrans, Real(-1),
               ConstMatrixView<Real>(coeff.view()), prev, Real(1), b);
  }
}

template <class Real>
void block_orth_columns(ConstMatrixView<Real> prev, MatrixView<Real> b,
                        int passes) {
  if (prev.cols() == 0) return;
  assert(prev.rows() == b.rows());
  Matrix<Real> coeff(prev.cols(), b.cols());
  for (int p = 0; p < passes; ++p) {
    blas::gemm(Op::Trans, Op::NoTrans, Real(1), prev, ConstMatrixView<Real>(b),
               Real(0), coeff.view());
    blas::gemm(Op::NoTrans, Op::NoTrans, Real(-1), prev,
               ConstMatrixView<Real>(coeff.view()), Real(1), b);
  }
}

#define RANDLA_INSTANTIATE_ORTHO(Real)                                        \
  template OrthoReport orthonormalize_columns<Real>(Scheme, MatrixView<Real>, \
                                                    MatrixView<Real>);        \
  template OrthoReport orthonormalize_rows<Real>(Scheme, MatrixView<Real>);   \
  template void cholqr_panel_batched<Real>(Scheme, MatrixView<Real>*,         \
                                           index_t, OrthoReport*);            \
  template void block_orth_rows<Real>(ConstMatrixView<Real>,                  \
                                      MatrixView<Real>, int);                 \
  template void block_orth_columns<Real>(ConstMatrixView<Real>,               \
                                         MatrixView<Real>, int);

RANDLA_INSTANTIATE_ORTHO(float)
RANDLA_INSTANTIATE_ORTHO(double)

#undef RANDLA_INSTANTIATE_ORTHO

}  // namespace randla::ortho
