#include "ortho/mixed_cholqr.hpp"

#include <stdexcept>

#include "la/blas3.hpp"
#include "la/cholesky.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"

namespace randla::ortho {

namespace {

// Promote a float view into a double matrix.
Matrix<double> widen(ConstMatrixView<float> a) {
  Matrix<double> out(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    const float* src = a.col_ptr(j);
    double* dst = out.view().col_ptr(j);
    for (index_t i = 0; i < a.rows(); ++i) dst[i] = double(src[i]);
  }
  return out;
}

}  // namespace

OrthoReport cholqr_mixed_columns(MatrixView<float> a, MatrixView<float> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m < n)
    throw std::invalid_argument("cholqr_mixed_columns: matrix must be tall");
  if (!r.empty() && (r.rows() != n || r.cols() != n))
    throw std::invalid_argument("cholqr_mixed_columns: R must be n×n");

  OrthoReport rep;
  rep.flops = flops::cholqr(m, n);

  // Gram in double: G = AᵀA with every product and sum in fp64.
  Matrix<double> ad = widen(ConstMatrixView<float>(a));
  Matrix<double> g(n, n);
  blas::syrk(Uplo::Upper, Op::Trans, 1.0, ConstMatrixView<double>(ad.view()),
             0.0, g.view());
  if (lapack::potrf(Uplo::Upper, g.view()) != 0) {
    rep.cholesky_failed = true;
    rep.fallback_used = true;
    Matrix<float> rr(n, n);
    lapack::qr_explicit(a, rr.view());
    if (!r.empty()) r.copy_from(ConstMatrixView<float>(rr.view()));
    return rep;
  }
  // Solve in double against the widened A, then narrow the result —
  // keeping the κ²-sensitive steps entirely in fp64.
  blas::trsm(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit, 1.0,
             ConstMatrixView<double>(g.view()), ad.view());
  for (index_t j = 0; j < n; ++j) {
    const double* src = ad.view().col_ptr(j);
    float* dst = a.col_ptr(j);
    for (index_t i = 0; i < m; ++i) dst[i] = float(src[i]);
  }
  if (!r.empty()) {
    r.set_zero();
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= j; ++i) r(i, j) = float(g(i, j));
  }
  return rep;
}

OrthoReport cholqr_mixed_rows(MatrixView<float> b) {
  const index_t l = b.rows();
  const index_t n = b.cols();
  if (l > n)
    throw std::invalid_argument("cholqr_mixed_rows: matrix must be short-wide");

  OrthoReport rep;
  rep.flops = flops::cholqr(n, l);

  Matrix<double> bd = widen(ConstMatrixView<float>(b));
  Matrix<double> g(l, l);
  blas::syrk(Uplo::Lower, Op::NoTrans, 1.0, ConstMatrixView<double>(bd.view()),
             0.0, g.view());
  if (lapack::potrf(Uplo::Lower, g.view()) != 0) {
    rep.cholesky_failed = true;
    rep.fallback_used = true;
    Matrix<float> bt = transposed(ConstMatrixView<float>(b));
    Matrix<float> rr(l, l);
    lapack::qr_explicit(bt.view(), rr.view());
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < l; ++i) b(i, j) = bt(j, i);
    return rep;
  }
  blas::trsm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit, 1.0,
             ConstMatrixView<double>(g.view()), bd.view());
  for (index_t j = 0; j < n; ++j) {
    const double* src = bd.view().col_ptr(j);
    float* dst = b.col_ptr(j);
    for (index_t i = 0; i < l; ++i) dst[i] = float(src[i]);
  }
  return rep;
}

}  // namespace randla::ortho
