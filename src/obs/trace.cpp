#include "obs/trace.hpp"

#include <cstdio>
#include <random>

namespace randla::obs {
namespace {

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint64_t t_trace_id = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  max_events_ = max_events;
  events_.reserve(std::min<std::size_t>(max_events, 4096));
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Tracer::record_complete(std::uint64_t trace_id, const char* name,
                             const char* cat,
                             std::chrono::steady_clock::time_point begin,
                             std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.trace_id = trace_id;
  ev.ts_us = std::chrono::duration<double, std::micro>(begin - epoch_).count();
  ev.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  ev.tid = this_thread_tid();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::chrome_json() const {
  std::vector<TraceEvent> evs = events();
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"randla\"}}";
  char buf[256];
  for (const TraceEvent& ev : evs) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"trace_id\": \"0x%llx\"}}",
                  ev.name, ev.cat, ev.ts_us, ev.dur_us, ev.tid,
                  static_cast<unsigned long long>(ev.trace_id));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

std::uint64_t current_trace_id() { return t_trace_id; }

ScopedTraceId::ScopedTraceId(std::uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_trace_id = prev_; }

std::uint64_t mint_trace_id() {
  static std::atomic<std::uint64_t> counter{[] {
    std::random_device rd;
    // High half random so ids from restarted clients rarely collide in
    // a merged trace; low half a counter so ids stay unique in-process.
    return (std::uint64_t(rd()) << 32) | 1u;
  }()};
  std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? 1 : id;
}

}  // namespace randla::obs
