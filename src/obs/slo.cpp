#include "obs/slo.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace randla::obs {

namespace {

// Wire order: FixedRank=0, Adaptive=1, Qrcp=2, Rqrcp=3, RqrcpAdaptive=4.
constexpr const char* kKindNames[kNumSloKinds] = {
    "fixed_rank", "adaptive", "qrcp", "rqrcp", "rqrcp_adaptive",
};

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  return end != v && d > 0 ? d : fallback;
}

std::atomic<double>& target_s_atom() {
  static std::atomic<double> v{env_double("RANDLA_SLO_TARGET_S", 1.0)};
  return v;
}

std::atomic<double>& objective_atom() {
  static std::atomic<double> v{env_double("RANDLA_SLO_OBJECTIVE", 0.99)};
  return v;
}

struct KindSeries {
  Histogram latency;
  Counter requests, violations;
  Gauge p50, p99, burn;
};

struct Series {
  KindSeries kinds[kNumSloKinds];
};

std::string labeled(const char* base, int kind) {
  return std::string(base) + "{kind=\"" + kKindNames[kind] + "\"}";
}

Series& series() {
  static Series s = [] {
    Series out;
    auto& g = Registry::global();
    for (int k = 0; k < kNumSloKinds; ++k) {
      auto& ks = out.kinds[k];
      ks.latency = g.histogram(labeled("slo_latency_seconds", k),
                               slo_latency_spec(),
                               "end-to-end job latency (wait + exec)");
      ks.requests = g.counter(labeled("slo_requests_total", k));
      ks.violations = g.counter(labeled("slo_violations_total", k),
                                "jobs failed or slower than the target");
      ks.p50 = g.gauge(labeled("slo_p50_seconds", k));
      ks.p99 = g.gauge(labeled("slo_p99_seconds", k));
      ks.burn = g.gauge(labeled("slo_burn_rate", k),
                        "violation rate / allowed rate; >1 burns budget");
    }
    return out;
  }();
  return s;
}

}  // namespace

const char* slo_kind_name(int kind) {
  return kind >= 0 && kind < kNumSloKinds ? kKindNames[kind] : "?";
}

HistogramSpec slo_latency_spec() {
  HistogramSpec spec;
  spec.first_upper = 1e-4;
  spec.growth = 1.4142135623730951;  // sqrt(2): exact double everywhere
  spec.buckets = 40;                 // including +Inf
  return spec;
}

void slo_observe(int kind, double latency_s, bool ok) {
  if (kind < 0 || kind >= kNumSloKinds) return;
  auto& ks = series().kinds[kind];
  ks.latency.observe(latency_s);
  ks.requests.inc();
  if (!ok || latency_s > target_s_atom().load(std::memory_order_relaxed))
    ks.violations.inc();
}

void slo_publish() {
  auto& s = series();
  const double objective = objective_atom().load(std::memory_order_relaxed);
  const double allowed = 1.0 - objective;
  // Publish the target itself so the burn-rate math is reconstructible
  // from any scrape (gauges are never summed cluster-wide, only
  // shard-labeled, which is what you want for a config value).
  auto& g = Registry::global();
  g.gauge("slo_target_seconds", "per-job latency target")
      .set(target_s_atom().load(std::memory_order_relaxed));
  g.gauge("slo_objective_ratio", "fraction of jobs that must meet it")
      .set(objective);
  const auto snap = Registry::global().scrape();
  for (int k = 0; k < kNumSloKinds; ++k) {
    auto& ks = s.kinds[k];
    const std::string name = labeled("slo_latency_seconds", k);
    for (const HistogramSnapshot& h : snap.histograms) {
      if (h.name != name) continue;
      ks.p50.set(h.quantile(0.50));
      ks.p99.set(h.quantile(0.99));
      break;
    }
    const double total = snap.value(labeled("slo_requests_total", k));
    const double bad = snap.value(labeled("slo_violations_total", k));
    const double rate = total > 0 ? bad / total : 0.0;
    ks.burn.set(allowed > 0 ? rate / allowed : 0.0);
  }
}

void set_slo_target(double target_s, double objective) {
  if (target_s > 0)
    target_s_atom().store(target_s, std::memory_order_relaxed);
  if (objective > 0 && objective < 1)
    objective_atom().store(objective, std::memory_order_relaxed);
}

double slo_target_s() {
  return target_s_atom().load(std::memory_order_relaxed);
}

double slo_objective() {
  return objective_atom().load(std::memory_order_relaxed);
}

}  // namespace randla::obs
