// metrics.hpp — lock-light metrics registry: counters, gauges, and
// fixed log-bucket histograms with per-thread accumulation.
//
// Design: each metric is a slot index into fixed-size per-thread shards
// of relaxed atomics. The hot path (Counter::add, Histogram::observe)
// touches only this thread's shard — each cell has a single writer, so
// updates are plain load/store pairs on relaxed atomics with no CAS and
// no lock. Registration and scraping take the registry mutex; scrape
// sums live shards in place and drains shards whose threads have exited
// into a base array, so dead threads cost nothing after the next scrape.
//
// Metric names follow Prometheus conventions; labels are embedded in
// the name string, e.g. `net_frames_in_total{type="submit"}`. The
// exposition layer splits at '{' to group a metric family's TYPE line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace randla::obs {

class Registry;

/// Monotonic counter (double-valued so flop counts fit). Handles are
/// small value types; default-constructed handles are no-ops.
class Counter {
 public:
  Counter() = default;
  void add(double v);
  void inc() { add(1.0); }
  double value() const;
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* r, std::uint32_t slot) : reg_(r), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, efficiency).
/// Backed by a single shared atomic, not per-thread shards: a gauge is
/// a point sample, so summing per-thread copies would be meaningless.
class Gauge {
 public:
  Gauge() = default;
  void set(double v);
  void add(double v);  ///< atomic read-modify-write; for up/down counts
  double value() const;
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* r, std::uint32_t idx) : reg_(r), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Fixed log-spaced bucket layout: bucket i spans
/// (first_upper*growth^(i-1), first_upper*growth^i]; the final bucket
/// is +Inf. Defaults cover 1µs … ~4300s at ~41% resolution, which is
/// fine-grained enough for p50/p90/p99 of serving latencies.
struct HistogramSpec {
  double first_upper = 1e-6;
  double growth = 1.4142135623730951;  // sqrt(2)
  std::uint32_t buckets = 64;          // including the +Inf bucket
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v);
  explicit operator bool() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Histogram(Registry* r, std::uint32_t slot, std::uint32_t def)
      : reg_(r), slot_(slot), def_(def) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;  ///< first of buckets+2 slots (…, sum, count)
  std::uint32_t def_ = 0;   ///< index into the registry's histogram defs
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> upper;  ///< bucket upper bounds; last is +Inf
  std::vector<double> count;  ///< per-bucket counts (not cumulative)
  double sum = 0;
  double total = 0;  ///< total observation count

  /// Approximate quantile (q in [0,1]) by linear interpolation within
  /// the containing bucket. Returns 0 on an empty histogram.
  double quantile(double q) const;
  double mean() const { return total > 0 ? sum / total : 0.0; }
};

/// Point-in-time copy of every metric in a registry.
struct Snapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  std::string prometheus() const;  ///< Prometheus text exposition
  std::string json() const;        ///< one JSON object, stable layout
  /// Counter/gauge lookup by exact name; 0 if absent.
  double value(std::string_view name) const;
  /// Flattened (name, value) list: counters, gauges, then per-histogram
  /// `<name>_count` / `<name>_sum` entries. This is what the Stats wire
  /// frame carries. With include_buckets, each histogram additionally
  /// emits cumulative `<base>_bucket{...,le="..."}` rows; the `le`
  /// labels are formatted with a fixed "%.10g" so two processes sharing
  /// a HistogramSpec emit byte-identical names, and a cluster router
  /// can merge shard histograms bucket-by-bucket exactly.
  std::vector<std::pair<std::string, double>> flatten(
      bool include_buckets = false) const;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by layer instrumentation. Local
  /// registries (e.g. per-TelemetrySink) isolate their own metrics.
  static Registry& global();

  /// Idempotent: re-registering a name returns the existing handle.
  /// Registering a name under a different kind throws std::logic_error.
  Counter counter(std::string_view name, std::string_view help = {});
  Gauge gauge(std::string_view name, std::string_view help = {});
  Histogram histogram(std::string_view name, HistogramSpec spec = {},
                      std::string_view help = {});

  /// Sum live per-thread shards, fold (drain) shards whose threads have
  /// exited, and return a copy of everything.
  Snapshot scrape();

  /// Zero all values (registrations survive). Test helper.
  void reset();

  struct Impl;  // public so the .cpp's file-local helpers can name it

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  Impl* impl_;
};

/// Kernel-profiling master switch. When off (the default), the BLAS
/// hot-path hooks cost one relaxed atomic load. Reads RANDLA_OBS_PROFILE
/// from the environment once at startup; randla_serve --metrics also
/// turns it on.
bool profiling_enabled();
void set_profiling_enabled(bool on);

}  // namespace randla::obs
