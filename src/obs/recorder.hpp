// recorder.hpp — always-on, lock-free flight recorder (DESIGN.md §14).
//
// A fixed set of global rings of seqlock-guarded slots records structured
// lifecycle events (job accepted/dispatched/batched/degraded/failed-over,
// fault injections, watchdog cancels, breaker transitions, cache traffic,
// shard membership) with bounded memory: the rings are statically sized,
// writers claim slots with one fetch_add and overwrite the oldest events
// on wrap. Every event carries a CLOCK_REALTIME timestamp (comparable
// across processes), a process-local sequence number, and a Philox-stamped
// id unique across processes, so dumps from many shards merge into one
// time-ordered postmortem.
//
// Concurrency: every slot word is a relaxed std::atomic<std::uint64_t>
// behind a per-slot sequence word (odd = write in progress, final value
// unique per claim ticket), so record() is lock-free and wait-free for
// distinct slots, and snapshot()/dump() taken *during* concurrent writes
// are race-free — torn slots are detected and skipped. The crash path
// (install_crash_handler) uses only async-signal-safe calls: atomic
// loads, integer formatting into a static buffer, open(2)/write(2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace randla::obs {

enum class EventKind : std::uint8_t {
  JobAccepted = 1,
  JobRejected = 2,
  JobDispatched = 3,
  JobBatched = 4,
  JobDegraded = 5,
  JobRequeued = 6,   ///< failover handoff to a surviving device
  JobCompleted = 7,
  JobFailed = 8,
  JobExpired = 9,
  FaultInjected = 10,     ///< a = fault::FaultKind
  WatchdogFired = 11,
  BreakerTransition = 12, ///< a = new state, b = old state
  CacheHit = 13,          ///< a = CacheDisposition (sketch vs result)
  CacheMiss = 14,
  CacheEvicted = 15,
  ShardDown = 16,         ///< a = shard index (router membership)
  ShardUp = 17,
  DumpRequested = 18,
  HedgeFired = 19,        ///< a = owner shard, b = successor shard
  HedgeCancelled = 20,    ///< a = losing shard (first-result-wins)
  ShardDrained = 21,      ///< a = shard index, b = handoff entries
};

const char* event_kind_name(EventKind k);

/// One decoded flight-recorder event (the snapshot/dump representation;
/// the in-ring layout is packed atomic words).
struct Event {
  double ts = 0;             ///< CLOCK_REALTIME seconds
  std::uint64_t seq = 0;     ///< process-local total order
  std::uint64_t stamp = 0;   ///< Philox id, unique across processes
  std::uint64_t job_id = 0;
  std::uint64_t trace_id = 0;
  EventKind kind{};
  std::uint32_t tid = 0;     ///< recording thread (hashed native id)
  std::int64_t a = 0;        ///< kind-specific argument
  std::int64_t b = 0;        ///< kind-specific argument
  char tag[24] = {};         ///< job tag, truncated
};

class Recorder {
 public:
  /// Process-wide recorder. Always on; recording an event costs a
  /// timestamp read, one fetch_add, and ~14 relaxed stores.
  static Recorder& global();

  void record(EventKind kind, std::uint64_t job_id, std::uint64_t trace_id,
              std::int64_t a = 0, std::int64_t b = 0,
              std::string_view tag = {});

  /// Consistent events currently in the rings, merged across rings and
  /// sorted by (ts, seq). Safe against concurrent record() calls.
  std::vector<Event> snapshot() const;

  /// {"source":...,"pid":...,"events":[...]} with one event per line
  /// (the postmortem CLI parses line-wise).
  std::string dump_json() const;
  bool dump_to_file(const char* path) const;

  /// Install best-effort SIGSEGV/SIGABRT handlers that write a dump to
  /// `path` using only async-signal-safe calls, then re-raise. Events
  /// appear in per-ring claim order (unsorted); the CLI sorts.
  void install_crash_handler(const char* path);

  /// Label this process's dumps (e.g. "shard-2"). Call once at startup.
  void set_source(std::string_view name);
  std::string source() const;

  std::uint64_t events_recorded() const;  ///< total, including overwritten

  /// Ring capacity in events (wraparound horizon). Compile-time fixed.
  static std::size_t capacity();

 private:
  Recorder();
};

}  // namespace randla::obs
