// trace.hpp — span tracer emitting Chrome trace_event JSON.
//
// One request = one trace: net::Client mints a 64-bit trace id, the v2
// Submit frame carries it, and every layer that touches the request
// (server frame handling, scheduler queue wait, worker execution, rsvd
// phase timers, profiled BLAS kernels) records spans tagged with it.
// Layers that cannot thread the id through their signatures (PhaseTimer,
// the BLAS kernels) read it from a thread-local set by ScopedTraceId.
//
// The tracer is off by default; when off, a Span construction costs one
// relaxed atomic load. Events are buffered in memory (bounded; overflow
// is counted, not blocked on) and serialized with chrome_json() as
// {"traceEvents": [...]}, loadable by Perfetto and chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace randla::obs {

struct TraceEvent {
  const char* name;  ///< static string literal
  const char* cat;   ///< static string literal
  std::uint64_t trace_id;
  double ts_us;   ///< microseconds since tracer epoch
  double dur_us;  ///< span duration in microseconds
  std::uint32_t tid;
};

class Tracer {
 public:
  static Tracer& global();

  void enable(std::size_t max_events = 1u << 17);
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record a completed span ("ph":"X"). `name` and `cat` must be
  /// string literals (stored by pointer). No-op when disabled.
  void record_complete(std::uint64_t trace_id, const char* name,
                       const char* cat,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end);

  std::vector<TraceEvent> events() const;
  std::size_t dropped() const;
  void clear();

  /// Full Chrome trace: {"traceEvents":[...]}, one event per line.
  std::string chrome_json() const;

 private:
  Tracer();
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = 0;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// Trace id for new work started on this thread; 0 = no active trace.
std::uint64_t current_trace_id();

/// RAII: install a trace id on this thread for the scope's duration
/// (saves and restores the previous id, so nesting works).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::uint64_t id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::uint64_t prev_;
};

/// Mint a process-unique nonzero trace id (random high bits + counter).
std::uint64_t mint_trace_id();

/// RAII span against the global tracer. Explicit-id form for layers
/// that carry the id; the two-arg form reads current_trace_id().
/// Records nothing when the tracer is off or the id is 0.
class Span {
 public:
  Span(const char* name, const char* cat, std::uint64_t trace_id)
      : name_(name), cat_(cat), trace_id_(trace_id) {
    armed_ = trace_id_ != 0 && Tracer::global().enabled();
    if (armed_) begin_ = std::chrono::steady_clock::now();
  }
  Span(const char* name, const char* cat)
      : Span(name, cat, current_trace_id()) {}
  ~Span() {
    if (armed_)
      Tracer::global().record_complete(trace_id_, name_, cat_, begin_,
                                       std::chrono::steady_clock::now());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t trace_id_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace randla::obs
