#include "obs/recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "rng/philox.hpp"

namespace randla::obs {

namespace {

// 8 rings x 512 slots x 12 words = ~384 KiB resident, fixed for the
// process lifetime. Threads hash onto rings, so contention on a ring's
// claim counter is rare; slots within a ring are claimed FIFO and
// overwritten on wrap (bounded memory, newest-events-win semantics).
constexpr std::size_t kRings = 8;
constexpr std::size_t kSlotsPerRing = 512;
constexpr std::size_t kWords = 12;  // payload words per slot (see below)

// Slot payload word layout (all relaxed atomics behind the seq word):
//   0: ts bits   1: seq      2: stamp   3: job_id   4: trace_id
//   5: kind | tid<<32        6: a       7: b        9..11: tag[24]
// (word 8 is reserved/zero so the tag words stay 8-byte aligned at a
// round base index).
struct Slot {
  std::atomic<std::uint64_t> sq{0};  // seqlock: odd = writing; final
                                     // value 2*ticket+2 (unique per claim)
  std::atomic<std::uint64_t> w[kWords];
};

struct Ring {
  std::atomic<std::uint64_t> next{0};  // claim ticket; slot = ticket % N
  Slot slots[kSlotsPerRing];
};

constexpr std::size_t kTagWords = 3;  // 24 bytes of tag
constexpr std::size_t kTagBase = 9;

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double double_of(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

double realtime_now() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

std::uint32_t thread_id_hash() {
  const auto h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

struct State {
  Ring rings[kRings];
  std::atomic<std::uint64_t> seq{0};       // process-local event order
  std::atomic<std::uint64_t> recorded{0};  // total record() calls
  std::uint64_t stamp_seed = 0;            // Philox key for event stamps
  std::atomic<std::uint64_t> source[8];    // 64-byte dump label
  char crash_path[256] = {};               // set once by install_crash_handler

  State() {
    stamp_seed = (static_cast<std::uint64_t>(::getpid()) << 32) ^
                 static_cast<std::uint64_t>(
                     std::chrono::system_clock::now().time_since_epoch()
                         .count());
    for (auto& wd : source) wd.store(0, std::memory_order_relaxed);
  }
};

State& state() {
  static State s;
  return s;
}

// Decode one slot if it holds a consistent, complete event. Returns
// false for empty, mid-write, or torn slots.
bool read_slot(const Slot& s, Event* out) {
  const std::uint64_t v1 = s.sq.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1)) return false;
  std::uint64_t w[kWords];
  for (std::size_t i = 0; i < kWords; ++i)
    w[i] = s.w[i].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.sq.load(std::memory_order_relaxed) != v1) return false;
  out->ts = double_of(w[0]);
  out->seq = w[1];
  out->stamp = w[2];
  out->job_id = w[3];
  out->trace_id = w[4];
  out->kind = static_cast<EventKind>(w[5] & 0xFF);
  out->tid = static_cast<std::uint32_t>(w[5] >> 32);
  out->a = static_cast<std::int64_t>(w[6]);
  out->b = static_cast<std::int64_t>(w[7]);
  for (std::size_t i = 0; i < kTagWords; ++i)
    std::memcpy(out->tag + 8 * i, &w[kTagBase + i], 8);
  out->tag[sizeof(out->tag) - 1] = '\0';
  return true;
}

// --- async-signal-safe formatting --------------------------------------

std::size_t fmt_u64(char* buf, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = char('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

struct SafeWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;
  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* s) {
    while (*s) {
      if (len == sizeof buf) flush();
      buf[len++] = *s++;
    }
  }
  void put_u64(std::uint64_t v) {
    if (len + 24 > sizeof buf) flush();
    len += fmt_u64(buf + len, v);
  }
  void put_i64(std::int64_t v) {
    if (v < 0) {
      put("-");
      put_u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }
  // Timestamp as fixed-point seconds.microseconds (no floating-point
  // printf on the crash path).
  void put_ts(double ts) {
    if (ts < 0) ts = 0;
    const std::uint64_t us = static_cast<std::uint64_t>(ts * 1e6);
    put_u64(us / 1000000);
    put(".");
    char frac[8];
    std::uint64_t f = us % 1000000;
    for (int i = 5; i >= 0; --i) {
      frac[i] = char('0' + f % 10);
      f /= 10;
    }
    frac[6] = '\0';
    put(frac);
  }
  // Tags are [-A-Za-z0-9_/.]; anything else is dropped rather than
  // escaped so the crash path never needs \uXXXX formatting.
  void put_tag(const char* tag) {
    for (const char* p = tag; *p; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
        continue;
      const char one[2] = {c, '\0'};
      put(one);
    }
  }
};

void write_event_json(SafeWriter& w, const Event& e, bool first) {
  w.put(first ? "\n" : ",\n");
  w.put("{\"ts\":");
  w.put_ts(e.ts);
  w.put(",\"seq\":");
  w.put_u64(e.seq);
  w.put(",\"stamp\":\"");
  w.put_u64(e.stamp);
  w.put("\",\"kind\":\"");
  w.put(event_kind_name(e.kind));
  w.put("\",\"job\":");
  w.put_u64(e.job_id);
  w.put(",\"trace\":\"");
  w.put_u64(e.trace_id);
  w.put("\",\"tid\":");
  w.put_u64(e.tid);
  w.put(",\"a\":");
  w.put_i64(e.a);
  w.put(",\"b\":");
  w.put_i64(e.b);
  w.put(",\"tag\":\"");
  w.put_tag(e.tag);
  w.put("\"}");
}

void source_chars(char* out /* >= 65 */) {
  const State& st = state();
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t wd = st.source[i].load(std::memory_order_relaxed);
    std::memcpy(out + 8 * i, &wd, 8);
  }
  out[64] = '\0';
}

// Best-effort dump from a signal handler: per-ring order, no sorting,
// no allocation. Reused by dump_to_file via an owned fd.
void dump_to_fd(int fd, bool crash) {
  SafeWriter w{fd};
  char src[65];
  source_chars(src);
  w.put("{\"source\":\"");
  w.put_tag(src);
  w.put("\",\"pid\":");
  w.put_u64(static_cast<std::uint64_t>(::getpid()));
  if (crash) w.put(",\"crash\":true");
  w.put(",\"events\":[");
  bool first = true;
  const State& st = state();
  for (const Ring& ring : st.rings) {
    for (const Slot& slot : ring.slots) {
      Event e;
      if (!read_slot(slot, &e)) continue;
      write_event_json(w, e, first);
      first = false;
    }
  }
  w.put("\n]}\n");
  w.flush();
}

void crash_handler(int sig) {
  const State& st = state();
  if (st.crash_path[0] != '\0') {
    const int fd = ::open(st.crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_to_fd(fd, /*crash=*/true);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default action; re-raise to die with the
  // original signal (core dumps, exit codes intact).
  ::raise(sig);
}

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::JobAccepted: return "job_accepted";
    case EventKind::JobRejected: return "job_rejected";
    case EventKind::JobDispatched: return "job_dispatched";
    case EventKind::JobBatched: return "job_batched";
    case EventKind::JobDegraded: return "job_degraded";
    case EventKind::JobRequeued: return "job_requeued";
    case EventKind::JobCompleted: return "job_completed";
    case EventKind::JobFailed: return "job_failed";
    case EventKind::JobExpired: return "job_expired";
    case EventKind::FaultInjected: return "fault_injected";
    case EventKind::WatchdogFired: return "watchdog_fired";
    case EventKind::BreakerTransition: return "breaker_transition";
    case EventKind::CacheHit: return "cache_hit";
    case EventKind::CacheMiss: return "cache_miss";
    case EventKind::CacheEvicted: return "cache_evicted";
    case EventKind::ShardDown: return "shard_down";
    case EventKind::ShardUp: return "shard_up";
    case EventKind::DumpRequested: return "dump_requested";
    case EventKind::HedgeFired: return "hedge_fired";
    case EventKind::HedgeCancelled: return "hedge_cancelled";
    case EventKind::ShardDrained: return "shard_drained";
  }
  return "?";
}

Recorder::Recorder() { (void)state(); }

Recorder& Recorder::global() {
  static Recorder r;
  return r;
}

std::size_t Recorder::capacity() { return kRings * kSlotsPerRing; }

void Recorder::record(EventKind kind, std::uint64_t job_id,
                      std::uint64_t trace_id, std::int64_t a, std::int64_t b,
                      std::string_view tag) {
  State& st = state();
  const std::uint32_t tid = thread_id_hash();
  Ring& ring = st.rings[tid % kRings];
  const std::uint64_t ticket =
      ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[ticket % kSlotsPerRing];

  const std::uint64_t seq = st.seq.fetch_add(1, std::memory_order_relaxed);
  st.recorded.fetch_add(1, std::memory_order_relaxed);
  // Philox-stamped id: unique across processes because the key mixes the
  // pid and start time, unique within the process via the sequence index.
  const auto blk =
      rng::Philox4x32::at(st.stamp_seed, 0x7265636Full /* "reco" */, seq);
  const std::uint64_t stamp =
      (static_cast<std::uint64_t>(blk[0]) << 32) | blk[1];

  // Seqlock write: odd sentinel derived from the claim ticket, payload,
  // then the unique even close value. A reader that overlaps either
  // sees an odd count or mismatched counts and skips the slot.
  slot.sq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[0].store(bits_of(realtime_now()), std::memory_order_relaxed);
  slot.w[1].store(seq, std::memory_order_relaxed);
  slot.w[2].store(stamp, std::memory_order_relaxed);
  slot.w[3].store(job_id, std::memory_order_relaxed);
  slot.w[4].store(trace_id, std::memory_order_relaxed);
  slot.w[5].store(static_cast<std::uint64_t>(kind) |
                      (static_cast<std::uint64_t>(tid) << 32),
                  std::memory_order_relaxed);
  slot.w[6].store(static_cast<std::uint64_t>(a), std::memory_order_relaxed);
  slot.w[7].store(static_cast<std::uint64_t>(b), std::memory_order_relaxed);
  char tagbuf[8 * kTagWords] = {};
  const std::size_t n = std::min(tag.size(), sizeof(tagbuf) - 1);
  std::memcpy(tagbuf, tag.data(), n);
  for (std::size_t i = 0; i < kTagWords; ++i) {
    std::uint64_t wd;
    std::memcpy(&wd, tagbuf + 8 * i, 8);
    slot.w[kTagBase + i].store(wd, std::memory_order_relaxed);
  }
  slot.sq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<Event> Recorder::snapshot() const {
  std::vector<Event> out;
  out.reserve(capacity());
  const State& st = state();
  for (const Ring& ring : st.rings) {
    for (const Slot& slot : ring.slots) {
      Event e;
      if (read_slot(slot, &e)) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    if (x.ts != y.ts) return x.ts < y.ts;
    return x.seq < y.seq;
  });
  return out;
}

std::string Recorder::dump_json() const {
  const auto events = snapshot();
  std::string out;
  out.reserve(64 + events.size() * 160);
  out += "{\"source\":\"";
  out += source();
  out += "\",\"pid\":";
  out += std::to_string(::getpid());
  out += ",\"events\":[";
  char line[512];
  bool first = true;
  for (const Event& e : events) {
    // Reuse the signal-safe formatter into an in-memory buffer so the
    // live and crash dumps emit byte-identical event lines.
    SafeWriter w{-1};
    write_event_json(w, e, first);
    first = false;
    const std::size_t n = std::min(w.len, sizeof(line) - 1);
    std::memcpy(line, w.buf, n);
    line[n] = '\0';
    out += line;
  }
  out += "\n]}\n";
  return out;
}

bool Recorder::dump_to_file(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::string json = dump_json();
  std::size_t off = 0;
  while (off < json.size()) {
    const ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return off == json.size();
}

void Recorder::install_crash_handler(const char* path) {
  State& st = state();
  std::snprintf(st.crash_path, sizeof st.crash_path, "%s", path);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

void Recorder::set_source(std::string_view name) {
  State& st = state();
  char buf[64] = {};
  std::memcpy(buf, name.data(), std::min(name.size(), sizeof(buf) - 1));
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint64_t wd;
    std::memcpy(&wd, buf + 8 * i, 8);
    st.source[i].store(wd, std::memory_order_relaxed);
  }
}

std::string Recorder::source() const {
  char buf[65];
  source_chars(buf);
  return std::string(buf);
}

std::uint64_t Recorder::events_recorded() const {
  return state().recorded.load(std::memory_order_relaxed);
}

}  // namespace randla::obs
