// slo.hpp — first-class SLO latency histograms per job kind
// (DESIGN.md §14).
//
// One histogram per served job kind, all on ONE fixed bucket ladder
// (slo_latency_spec) whose bounds are compile-time constants — every
// process in a cluster exposes bit-identical `le` labels, so a router
// merging shard scrapes can sum buckets by exact name and the merged
// histogram is exact, not an approximation.
//
// slo_observe() is called once per completed job (runtime telemetry);
// slo_publish() precomputes p50/p99 gauges and the error-budget
// burn-rate per kind so scrapers get decision-ready signals without
// re-deriving quantiles. Burn rate = (violating fraction)/(1-objective):
// 1.0 means the error budget is being consumed exactly at the allowed
// rate; >1 means the budget will be exhausted early. The latency target
// and objective default to 1s @ 99% and can be overridden via
// RANDLA_SLO_TARGET_S / RANDLA_SLO_OBJECTIVE or set_slo_target().
#pragma once

#include "obs/metrics.hpp"

namespace randla::obs {

/// Served job kinds, by wire value (mirrors runtime::JobKind without a
/// runtime dependency — obs sits below runtime in the layering).
inline constexpr int kNumSloKinds = 5;
const char* slo_kind_name(int kind);  ///< "fixed_rank", ... ; "?" if out of range

/// The shared bucket ladder: 100µs first bound, sqrt(2) growth, 40
/// buckets (last +Inf) — ~100µs .. ~80s at ~41% resolution.
HistogramSpec slo_latency_spec();

/// Record one finished job: latency into the kind's histogram, and a
/// violation when the job failed or exceeded the latency target.
void slo_observe(int kind, double latency_s, bool ok);

/// Recompute slo_p50_seconds / slo_p99_seconds / slo_burn_rate gauges
/// from the current histograms. Called before every Stats scrape.
void slo_publish();

/// Override the latency target (seconds) and availability objective
/// (fraction, e.g. 0.99). Applies to subsequent observations.
void set_slo_target(double target_s, double objective);
double slo_target_s();
double slo_objective();

}  // namespace randla::obs
