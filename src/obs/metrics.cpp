#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace randla::obs {
namespace {

// Fixed shard capacity so a shard's cell array never reallocates while
// another thread is scraping it. 4096 doubles = 32 KiB per thread per
// registry; registration past the cap throws (it means a metric is
// being minted per-request, which is a bug, not a workload).
constexpr std::uint32_t kMaxSlots = 4096;

struct Shard {
  std::atomic<double> cells[kMaxSlots];
  std::atomic<bool> retired{false};
  Shard() {
    for (auto& c : cells) c.store(0.0, std::memory_order_relaxed);
  }
};

// Single-writer relaxed accumulate: each cell is written only by the
// owning thread, so a plain load+store pair is race-free and avoids the
// CAS loop std::atomic<double>::fetch_add would compile to.
inline void bump(std::atomic<double>& cell, double v) {
  cell.store(cell.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricDef {
  std::string name;
  std::string help;
  Kind kind;
  std::uint32_t slot = 0;  // first shard slot (counters, histograms)
  std::uint32_t idx = 0;   // gauge index / histogram def index
};

struct HistogramDef {
  HistogramSpec spec;
  std::vector<double> upper;  // size == spec.buckets; last is +Inf
};

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// "net_frames_in_total{type=\"submit\"}" -> base, inner labels (no braces).
void split_labels(std::string_view name, std::string_view& base,
                  std::string_view& labels) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) {
    base = name;
    labels = {};
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
}

}  // namespace

struct Registry::Impl {
  std::mutex mu;
  std::uint64_t id = 0;
  std::vector<MetricDef> metrics;  // registration order drives exposition
  std::unordered_map<std::string, std::size_t> index;
  std::uint32_t next_slot = 0;
  std::vector<double> base;  // drained totals from retired shards
  std::vector<std::shared_ptr<Shard>> shards;
  std::deque<std::atomic<double>> gauges;  // deque: grows without moving
  std::deque<HistogramDef> hists;  // deque: observe() reads without mu

  // Sum of base plus every shard (caller holds mu).
  double slot_total(std::uint32_t slot) const {
    double v = slot < base.size() ? base[slot] : 0.0;
    for (const auto& s : shards)
      v += s->cells[slot].load(std::memory_order_relaxed);
    return v;
  }

  void drain_retired() {  // caller holds mu
    auto it = shards.begin();
    while (it != shards.end()) {
      if ((*it)->retired.load(std::memory_order_acquire)) {
        if (base.size() < next_slot) base.resize(next_slot, 0.0);
        for (std::uint32_t s = 0; s < next_slot; ++s)
          base[s] += (*it)->cells[s].load(std::memory_order_relaxed);
        it = shards.erase(it);
      } else {
        ++it;
      }
    }
  }
};

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread shard directory. On thread exit the destructor marks each
// shard retired; the shard itself stays alive via the shared_ptr until
// the registry drains it on the next scrape, so no value is ever lost
// and a dying registry never has to chase other threads' thread_locals.
struct ThreadEntry {
  std::uint64_t reg_id;
  Shard* shard;
  std::shared_ptr<Shard> owner;
};

struct ThreadShards {
  std::vector<ThreadEntry> entries;
  ~ThreadShards() {
    for (auto& e : entries)
      e.owner->retired.store(true, std::memory_order_release);
  }
};

thread_local ThreadShards t_shards;

Shard* local_shard(Registry::Impl* impl) {
  for (auto& e : t_shards.entries)
    if (e.reg_id == impl->id) return e.shard;
  auto sp = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    impl->shards.push_back(sp);
  }
  t_shards.entries.push_back({impl->id, sp.get(), sp});
  return t_shards.entries.back().shard;
}

}  // namespace

Registry::Registry() : impl_(new Impl) { impl_->id = next_registry_id(); }

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Counter Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->index.find(std::string(name));
  if (it != impl_->index.end()) {
    const MetricDef& def = impl_->metrics[it->second];
    if (def.kind != Kind::kCounter)
      throw std::logic_error("obs: metric kind mismatch for " +
                             std::string(name));
    return Counter(this, def.slot);
  }
  if (impl_->next_slot + 1 > kMaxSlots)
    throw std::logic_error("obs: registry slot capacity exceeded");
  MetricDef def;
  def.name = std::string(name);
  def.help = std::string(help);
  def.kind = Kind::kCounter;
  def.slot = impl_->next_slot++;
  impl_->index.emplace(def.name, impl_->metrics.size());
  impl_->metrics.push_back(std::move(def));
  return Counter(this, impl_->metrics.back().slot);
}

Gauge Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->index.find(std::string(name));
  if (it != impl_->index.end()) {
    const MetricDef& def = impl_->metrics[it->second];
    if (def.kind != Kind::kGauge)
      throw std::logic_error("obs: metric kind mismatch for " +
                             std::string(name));
    return Gauge(this, def.idx);
  }
  MetricDef def;
  def.name = std::string(name);
  def.help = std::string(help);
  def.kind = Kind::kGauge;
  def.idx = static_cast<std::uint32_t>(impl_->gauges.size());
  impl_->gauges.emplace_back(0.0);
  impl_->index.emplace(def.name, impl_->metrics.size());
  impl_->metrics.push_back(std::move(def));
  return Gauge(this, impl_->metrics.back().idx);
}

Histogram Registry::histogram(std::string_view name, HistogramSpec spec,
                              std::string_view help) {
  if (spec.buckets < 2 || spec.first_upper <= 0 || spec.growth <= 1.0)
    throw std::logic_error("obs: invalid histogram spec for " +
                           std::string(name));
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->index.find(std::string(name));
  if (it != impl_->index.end()) {
    const MetricDef& def = impl_->metrics[it->second];
    if (def.kind != Kind::kHistogram)
      throw std::logic_error("obs: metric kind mismatch for " +
                             std::string(name));
    return Histogram(this, def.slot, def.idx);
  }
  const std::uint32_t slots = spec.buckets + 2;  // buckets, sum, count
  if (impl_->next_slot + slots > kMaxSlots)
    throw std::logic_error("obs: registry slot capacity exceeded");
  HistogramDef hdef;
  hdef.spec = spec;
  hdef.upper.resize(spec.buckets);
  double u = spec.first_upper;
  for (std::uint32_t i = 0; i + 1 < spec.buckets; ++i) {
    hdef.upper[i] = u;
    u *= spec.growth;
  }
  hdef.upper[spec.buckets - 1] = std::numeric_limits<double>::infinity();
  MetricDef def;
  def.name = std::string(name);
  def.help = std::string(help);
  def.kind = Kind::kHistogram;
  def.slot = impl_->next_slot;
  def.idx = static_cast<std::uint32_t>(impl_->hists.size());
  impl_->next_slot += slots;
  impl_->hists.push_back(std::move(hdef));
  impl_->index.emplace(def.name, impl_->metrics.size());
  impl_->metrics.push_back(std::move(def));
  return Histogram(this, impl_->metrics.back().slot,
                   impl_->metrics.back().idx);
}

void Counter::add(double v) {
  if (!reg_) return;
  bump(local_shard(reg_->impl_)->cells[slot_], v);
}

double Counter::value() const {
  if (!reg_) return 0;
  std::lock_guard<std::mutex> lock(reg_->impl_->mu);
  return reg_->impl_->slot_total(slot_);
}

void Gauge::set(double v) {
  if (!reg_) return;
  reg_->impl_->gauges[idx_].store(v, std::memory_order_relaxed);
}

void Gauge::add(double v) {
  if (!reg_) return;
  auto& cell = reg_->impl_->gauges[idx_];
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Gauge::value() const {
  if (!reg_) return 0;
  return reg_->impl_->gauges[idx_].load(std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!reg_) return;
  Registry::Impl* impl = reg_->impl_;
  Shard* shard = local_shard(impl);
  // The def's bound array is immutable after registration, so reading
  // it without the registry mutex is safe.
  const HistogramDef& def = impl->hists[def_];
  const auto it = std::lower_bound(def.upper.begin(), def.upper.end(), v);
  const auto bucket = static_cast<std::uint32_t>(it - def.upper.begin());
  bump(shard->cells[slot_ + std::min(bucket, def.spec.buckets - 1)], 1.0);
  bump(shard->cells[slot_ + def.spec.buckets], v);       // sum
  bump(shard->cells[slot_ + def.spec.buckets + 1], 1.0); // count
}

double HistogramSnapshot::quantile(double q) const {
  if (total <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * total;
  double cum = 0;
  for (std::size_t i = 0; i < count.size(); ++i) {
    if (count[i] <= 0) continue;
    if (cum + count[i] >= rank) {
      const double lower = i == 0 ? 0.0 : upper[i - 1];
      const double hi = upper[i];
      if (!std::isfinite(hi)) return lower;  // +Inf bucket: report floor
      const double frac = count[i] > 0 ? (rank - cum) / count[i] : 0.0;
      return lower + (hi - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cum += count[i];
  }
  for (std::size_t i = upper.size(); i-- > 0;)
    if (std::isfinite(upper[i])) return upper[i];
  return 0;
}

Snapshot Registry::scrape() {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drain_retired();
  for (const MetricDef& def : impl_->metrics) {
    switch (def.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(def.name, impl_->slot_total(def.slot));
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(
            def.name,
            impl_->gauges[def.idx].load(std::memory_order_relaxed));
        break;
      case Kind::kHistogram: {
        const HistogramDef& hdef = impl_->hists[def.idx];
        HistogramSnapshot h;
        h.name = def.name;
        h.help = def.help;
        h.upper = hdef.upper;
        h.count.resize(hdef.spec.buckets);
        for (std::uint32_t i = 0; i < hdef.spec.buckets; ++i)
          h.count[i] = impl_->slot_total(def.slot + i);
        h.sum = impl_->slot_total(def.slot + hdef.spec.buckets);
        h.total = impl_->slot_total(def.slot + hdef.spec.buckets + 1);
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->base.begin(), impl_->base.end(), 0.0);
  for (auto& shard : impl_->shards)
    for (std::uint32_t s = 0; s < impl_->next_slot; ++s)
      shard->cells[s].store(0.0, std::memory_order_relaxed);
  for (auto& g : impl_->gauges) g.store(0.0, std::memory_order_relaxed);
}

std::string Snapshot::prometheus() const {
  std::string out;
  auto emit_header = [&out](std::string_view base, std::string_view help,
                            const char* type, std::string& last) {
    if (last == base) return;
    last = std::string(base);
    if (!help.empty()) {
      out += "# HELP ";
      out += base;
      out += ' ';
      out += help;
      out += '\n';
    }
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
  };
  std::string last;
  for (const auto& [name, value] : counters) {
    std::string_view base, labels;
    split_labels(name, base, labels);
    emit_header(base, {}, "counter", last);
    out += name;
    out += ' ';
    out += fmt_double(value);
    out += '\n';
  }
  for (const auto& [name, value] : gauges) {
    std::string_view base, labels;
    split_labels(name, base, labels);
    emit_header(base, {}, "gauge", last);
    out += name;
    out += ' ';
    out += fmt_double(value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : histograms) {
    std::string_view base, labels;
    split_labels(h.name, base, labels);
    emit_header(base, h.help, "histogram", last);
    double cum = 0;
    for (std::size_t i = 0; i < h.upper.size(); ++i) {
      cum += h.count[i];
      out += base;
      out += "_bucket{";
      if (!labels.empty()) {
        out += labels;
        out += ',';
      }
      out += "le=\"";
      out += std::isfinite(h.upper[i]) ? fmt_double(h.upper[i]) : "+Inf";
      out += "\"} ";
      out += fmt_double(cum);
      out += '\n';
    }
    auto scalar = [&](const char* suffix, double v) {
      out += base;
      out += suffix;
      if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
      }
      out += ' ';
      out += fmt_double(v);
      out += '\n';
    };
    scalar("_sum", h.sum);
    scalar("_count", h.total);
  }
  return out;
}

std::string Snapshot::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape(out, name);
    out += "\": ";
    out += fmt_double(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape(out, name);
    out += "\": ";
    out += fmt_double(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape(out, h.name);
    out += "\": {\"count\": ";
    out += fmt_double(h.total);
    out += ", \"sum\": ";
    out += fmt_double(h.sum);
    out += ", \"p50\": ";
    out += fmt_double(h.quantile(0.50));
    out += ", \"p90\": ";
    out += fmt_double(h.quantile(0.90));
    out += ", \"p99\": ";
    out += fmt_double(h.quantile(0.99));
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

double Snapshot::value(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  return 0;
}

std::vector<std::pair<std::string, double>> Snapshot::flatten(
    bool include_buckets) const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size() + 2 * histograms.size());
  out.insert(out.end(), counters.begin(), counters.end());
  out.insert(out.end(), gauges.begin(), gauges.end());
  for (const HistogramSnapshot& h : histograms) {
    // Prometheus name grammar: the _count/_sum/_bucket suffix attaches
    // to the base name, BEFORE any label set — `x_count{kind="a"}`,
    // never `x{kind="a"}_count`. Getting this wrong would make labeled
    // histogram rows invisible to the cluster stats merge, which keys
    // on the suffix of the label-stripped name.
    std::string_view base, labels;
    split_labels(h.name, base, labels);
    const std::string wrap =
        labels.empty() ? "" : "{" + std::string(labels) + "}";
    out.emplace_back(std::string(base) + "_count" + wrap, h.total);
    out.emplace_back(std::string(base) + "_sum" + wrap, h.sum);
    if (!include_buckets) continue;
    double cum = 0;
    for (std::size_t i = 0; i < h.upper.size(); ++i) {
      cum += h.count[i];
      std::string name(base);
      name += "_bucket{";
      if (!labels.empty()) {
        name += labels;
        name += ',';
      }
      name += "le=\"";
      name += std::isfinite(h.upper[i]) ? fmt_double(h.upper[i]) : "+Inf";
      name += "\"}";
      out.emplace_back(std::move(name), cum);
    }
  }
  return out;
}

namespace {
std::atomic<bool>& profiling_flag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("RANDLA_OBS_PROFILE");
    return env && *env && *env != '0';
  }());
  return flag;
}
}  // namespace

bool profiling_enabled() {
  return profiling_flag().load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  profiling_flag().store(on, std::memory_order_relaxed);
}

}  // namespace randla::obs
