// householder.hpp — Householder reflector kernels and QR factorization
// (LAPACK larfg/larf/larft/larfb/geqrf/orgqr/ormqr analogues).
//
// These are the BLAS-1/BLAS-2-heavy kernels whose limited throughput the
// paper measures (HHQR in Figures 7 and 9); they also back the
// unconditionally stable fallback path when CholQR breaks down, and the
// panel factorization inside QP3.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace randla::lapack {

/// Generate an elementary reflector H = I − τ·v·vᵀ such that
/// H·[alpha; x] = [beta; 0]. On exit `alpha` holds beta and x holds the
/// tail of v (v₀ ≡ 1 is implicit). Returns τ (0 when x is already zero).
template <class Real>
Real larfg(index_t n, Real& alpha, Real* x, index_t incx);

/// Apply H = I − τ·v·vᵀ to C from the given side (v has C.rows() or
/// C.cols() entries with v₀ ≡ 1 NOT implicit here: v[0] must be 1).
template <class Real>
void larf(Side side, index_t vlen, const Real* v, index_t incv, Real tau,
          MatrixView<Real> c);

/// Form the upper-triangular block-reflector factor T (k×k) for the
/// forward column-wise compact-WY representation: H₁·H₂···H_k =
/// I − V·T·Vᵀ, where V is the m×k unit-lower-trapezoidal matrix stored
/// in `v` (diagonal implicitly 1, above-diagonal ignored).
template <class Real>
void larft(ConstMatrixView<Real> v, const Real* tau, MatrixView<Real> t);

/// Apply the block reflector (I − V·T·Vᵀ) or its transpose to C from the
/// left: C ← (I − V·Tᵒᵖ·Vᵀ)·C.
template <class Real>
void larfb_left(Op op, ConstMatrixView<Real> v, ConstMatrixView<Real> t,
                MatrixView<Real> c);

/// Blocked Householder QR: A ← {R above diagonal, V below}. `tau` is
/// resized to min(m, n).
template <class Real>
void geqrf(MatrixView<Real> a, std::vector<Real>& tau);

/// Generate the leading `k` columns of Q from geqrf output (in place on
/// the m×k leading block of `a`; requires a.cols() ≥ k factors present).
template <class Real>
void orgqr(MatrixView<Real> a, const std::vector<Real>& tau, index_t k);

/// Apply Q (op == NoTrans) or Qᵀ (op == Trans) from geqrf factors in `a`
/// to C from the left.
template <class Real>
void ormqr_left(Op op, ConstMatrixView<Real> a, const std::vector<Real>& tau,
                MatrixView<Real> c);

/// Convenience: thin QR of a (m×n, m ≥ n) returning explicit Q (m×n) in
/// `a` and R (n×n upper) in `r`.
template <class Real>
void qr_explicit(MatrixView<Real> a, MatrixView<Real> r);

}  // namespace randla::lapack
