// matrix.hpp — owning dense matrix and non-owning strided views.
//
// All of randla uses column-major storage with an explicit leading
// dimension (ld), mirroring BLAS/LAPACK conventions. Views make panel /
// trailing-submatrix algorithms (blocked QR, QP3, CholQR) zero-copy.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace randla {

using index_t = std::int64_t;

/// Transpose flag for BLAS-style kernels.
enum class Op : std::uint8_t { NoTrans, Trans };

inline Op transpose(Op op) { return op == Op::NoTrans ? Op::Trans : Op::NoTrans; }

/// Triangle selector for symmetric / triangular kernels.
enum class Uplo : std::uint8_t { Upper, Lower };

/// Side selector for trsm/trmm/ormqr.
enum class Side : std::uint8_t { Left, Right };

/// Unit-diagonal flag for triangular kernels.
enum class Diag : std::uint8_t { NonUnit, Unit };

template <class Real>
class ConstMatrixView;

/// Non-owning mutable view of a column-major matrix block.
///
/// A view is (rows, cols, ld, data): element (i, j) lives at
/// data[i + j*ld]. Views never allocate and never free.
template <class Real>
class MatrixView {
  static_assert(std::is_floating_point_v<Real>);

 public:
  MatrixView() = default;
  MatrixView(index_t rows, index_t cols, Real* data, index_t ld)
      : rows_(rows), cols_(cols), ld_(ld), data_(data) {
    assert(rows >= 0 && cols >= 0 && ld >= (rows > 0 ? rows : 1));
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  Real* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  index_t size() const { return rows_ * cols_; }

  Real& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  /// Pointer to the top of column j.
  Real* col_ptr(index_t j) const {
    assert(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  /// Sub-block view, rows [i, i+r), columns [j, j+c).
  MatrixView block(index_t i, index_t j, index_t r, index_t c) const {
    assert(i >= 0 && j >= 0 && r >= 0 && c >= 0);
    assert(i + r <= rows_ && j + c <= cols_);
    return MatrixView(r, c, data_ + i + j * ld_, ld_);
  }

  /// Single-column view (rows × 1).
  MatrixView col(index_t j) const { return block(0, j, rows_, 1); }

  /// Columns [j0, j1) as a view.
  MatrixView cols_range(index_t j0, index_t j1) const {
    return block(0, j0, rows_, j1 - j0);
  }

  /// Rows [i0, i1) as a view.
  MatrixView rows_range(index_t i0, index_t i1) const {
    return block(i0, 0, i1 - i0, cols_);
  }

  void fill(Real v) const {
    for (index_t j = 0; j < cols_; ++j) {
      Real* c = col_ptr(j);
      for (index_t i = 0; i < rows_; ++i) c[i] = v;
    }
  }

  void set_zero() const { fill(Real(0)); }

  /// Identity on the leading min(rows, cols) diagonal, zero elsewhere.
  void set_identity() const {
    set_zero();
    const index_t k = rows_ < cols_ ? rows_ : cols_;
    for (index_t i = 0; i < k; ++i) (*this)(i, i) = Real(1);
  }

  /// Copy from a same-shaped source view.
  void copy_from(ConstMatrixView<Real> src) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  Real* data_ = nullptr;
};

/// Non-owning read-only view; see MatrixView.
template <class Real>
class ConstMatrixView {
  static_assert(std::is_floating_point_v<Real>);

 public:
  ConstMatrixView() = default;
  ConstMatrixView(index_t rows, index_t cols, const Real* data, index_t ld)
      : rows_(rows), cols_(cols), ld_(ld), data_(data) {
    assert(rows >= 0 && cols >= 0 && ld >= (rows > 0 ? rows : 1));
  }
  // Implicit mutable→const conversion, as with pointers.
  ConstMatrixView(MatrixView<Real> v)  // NOLINT(google-explicit-constructor)
      : rows_(v.rows()), cols_(v.cols()), ld_(v.ld()), data_(v.data()) {}

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  const Real* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  index_t size() const { return rows_ * cols_; }

  const Real& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  const Real* col_ptr(index_t j) const {
    assert(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  ConstMatrixView block(index_t i, index_t j, index_t r, index_t c) const {
    assert(i >= 0 && j >= 0 && r >= 0 && c >= 0);
    assert(i + r <= rows_ && j + c <= cols_);
    return ConstMatrixView(r, c, data_ + i + j * ld_, ld_);
  }

  ConstMatrixView col(index_t j) const { return block(0, j, rows_, 1); }

  ConstMatrixView cols_range(index_t j0, index_t j1) const {
    return block(0, j0, rows_, j1 - j0);
  }

  ConstMatrixView rows_range(index_t i0, index_t i1) const {
    return block(i0, 0, i1 - i0, cols_);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  const Real* data_ = nullptr;
};

template <class Real>
void MatrixView<Real>::copy_from(ConstMatrixView<Real> src) const {
  assert(src.rows() == rows_ && src.cols() == cols_);
  for (index_t j = 0; j < cols_; ++j) {
    std::memcpy(col_ptr(j), src.col_ptr(j),
                static_cast<std::size_t>(rows_) * sizeof(Real));
  }
}

/// Owning column-major dense matrix (ld == rows).
template <class Real>
class Matrix {
  static_assert(std::is_floating_point_v<Real>);

 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative dims");
    storage_.assign(
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), Real(0));
  }

  /// Row-major initializer list, for small literal matrices in tests:
  /// Matrix<double> A(2, 2, {1, 2, 3, 4}) is [[1,2],[3,4]].
  Matrix(index_t rows, index_t cols, std::initializer_list<Real> row_major)
      : Matrix(rows, cols) {
    if (static_cast<index_t>(row_major.size()) != rows * cols)
      throw std::invalid_argument("Matrix: initializer size mismatch");
    auto it = row_major.begin();
    for (index_t i = 0; i < rows; ++i)
      for (index_t j = 0; j < cols; ++j) (*this)(i, j) = *it++;
  }

  static Matrix identity(index_t n) {
    Matrix I(n, n);
    I.view().set_identity();
    return I;
  }

  /// Deep copy of any view (materializes with ld == rows).
  static Matrix copy_of(ConstMatrixView<Real> src) {
    Matrix out(src.rows(), src.cols());
    out.view().copy_from(src);
    return out;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_ > 0 ? rows_ : 1; }
  Real* data() { return storage_.data(); }
  const Real* data() const { return storage_.data(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Real& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return storage_[static_cast<std::size_t>(i + j * ld())];
  }
  const Real& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return storage_[static_cast<std::size_t>(i + j * ld())];
  }

  MatrixView<Real> view() {
    return MatrixView<Real>(rows_, cols_, storage_.data(), ld());
  }
  ConstMatrixView<Real> view() const {
    return ConstMatrixView<Real>(rows_, cols_, storage_.data(), ld());
  }
  ConstMatrixView<Real> const_view() const { return view(); }

  MatrixView<Real> block(index_t i, index_t j, index_t r, index_t c) {
    return view().block(i, j, r, c);
  }
  ConstMatrixView<Real> block(index_t i, index_t j, index_t r, index_t c) const {
    return view().block(i, j, r, c);
  }
  MatrixView<Real> col(index_t j) { return view().col(j); }
  ConstMatrixView<Real> col(index_t j) const { return view().col(j); }

  /// Reshape in place to (rows, cols), zero-filled. Invalidates views.
  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    storage_.assign(
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), Real(0));
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Real> storage_;
};

/// A read-only view paired with shared ownership of whatever storage
/// backs it (an arena block of decoded wire bytes, another Matrix, a
/// mapped file...). This is the zero-copy ingest currency: a job can run
/// kernels on bytes it does not own, and the keepalive pins them for as
/// long as any holder (including retries on another device) is alive.
template <class Real>
struct SharedConstMatrixView {
  ConstMatrixView<Real> view;
  std::shared_ptr<const void> keepalive;

  bool empty() const { return view.empty(); }
};

/// Materialized transpose (convenience for tests and small factors).
template <class Real>
Matrix<Real> transposed(ConstMatrixView<Real> a) {
  Matrix<Real> t(a.cols(), a.rows());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

}  // namespace randla
