// norms.hpp — matrix norms and error measures used throughout the
// evaluation (approximation error ‖AP − QR‖/‖A‖, adaptive ε̃, ...).
#pragma once

#include "la/matrix.hpp"

namespace randla {

/// Frobenius norm, overflow-safe.
template <class Real>
Real norm_fro(ConstMatrixView<Real> a);

/// Largest absolute entry.
template <class Real>
Real norm_max(ConstMatrixView<Real> a);

/// Spectral norm estimate via power iteration on AᵀA (relative tolerance
/// `tol`, at most `max_iter` iterations). Deterministic start vector.
template <class Real>
Real norm2_est(ConstMatrixView<Real> a, Real tol = Real(1e-6),
               index_t max_iter = 100);

}  // namespace randla
