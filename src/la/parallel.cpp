#include "la/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace randla {

namespace {

index_t initial_threads() {
  if (const char* s = std::getenv("RANDLA_NUM_THREADS")) {
    const long v = std::atol(s);
    if (v >= 1) return static_cast<index_t>(v);
  }
  return static_cast<index_t>(std::max(1u, std::thread::hardware_concurrency()));
}

std::atomic<index_t> g_threads{initial_threads()};

// A chunk body running inside the pool (worker lane or the caller's own
// draining loop) must not fan out again: nested parallel_ranges would
// wait on chunks that only the blocked threads could run.
thread_local bool t_in_pool_task = false;

// One parallel_ranges call in flight. Chunk c covers
// [begin + c·per, min(end, begin + (c+1)·per)).
struct Batch {
  const std::function<void(index_t, index_t)>* fn = nullptr;
  index_t total = 0;
  index_t per = 0;
  index_t count = 0;
  index_t next = 0;                 // next unclaimed chunk (queue lock)
  std::atomic<index_t> done{0};     // chunks finished
  std::mutex m;
  std::condition_variable cv;      // signaled when done == count
};

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  ~WorkerPool() { stop_workers(); }

  void run(index_t total, index_t chunks,
           const std::function<void(index_t, index_t)>& fn) {
    ensure_size(blas_num_threads() - 1);

    auto batch = std::make_shared<Batch>();
    batch->fn = &fn;
    batch->total = total;
    batch->per = (total + chunks - 1) / chunks;
    batch->count = chunks;

    {
      std::lock_guard<std::mutex> lk(qm_);
      queue_.push_back(batch);
      split_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    qcv_.notify_all();

    // The caller is a full lane: claim chunks of its own batch until
    // none are left, then wait for workers to finish the rest. Because
    // the caller drains its own batch, completion never depends on any
    // worker being free (or existing at all).
    for (;;) {
      index_t c;
      {
        std::lock_guard<std::mutex> lk(qm_);
        if (batch->next >= batch->count) break;
        c = batch->next++;
        if (batch->next >= batch->count) remove_from_queue(batch.get());
      }
      run_chunk(*batch, c);
    }
    std::unique_lock<std::mutex> lk(batch->m);
    batch->cv.wait(lk, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
  }

  PoolStats stats() {
    PoolStats s;
    s.chunks_run = chunks_run_.load(std::memory_order_relaxed);
    s.split_batches = split_batches_.load(std::memory_order_relaxed);
    s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(size_m_);
    s.workers = static_cast<index_t>(workers_.size());
    return s;
  }

 private:
  WorkerPool() = default;

  void ensure_size(index_t want) {
    if (want < 0) want = 0;
    {
      std::lock_guard<std::mutex> lk(size_m_);
      if (static_cast<index_t>(workers_.size()) == want) return;
    }
    resize(want);
  }

  void resize(index_t want) {
    std::lock_guard<std::mutex> lk(size_m_);
    if (static_cast<index_t>(workers_.size()) == want) return;
    stop_workers_locked();
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    stop_ = false;
    workers_.reserve(static_cast<std::size_t>(want));
    for (index_t i = 0; i < want; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    std::lock_guard<std::mutex> lk(size_m_);
    stop_workers_locked();
  }

  void stop_workers_locked() {
    {
      std::lock_guard<std::mutex> lk(qm_);
      stop_ = true;
    }
    qcv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    // In-flight batches are unaffected: their remaining chunks are
    // claimed by the threads that submitted them.
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      index_t c = 0;
      {
        std::unique_lock<std::mutex> lk(qm_);
        qcv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (stop_) return;
        batch = queue_.front();
        c = batch->next++;
        if (batch->next >= batch->count) queue_.pop_front();
      }
      run_chunk(*batch, c);
    }
  }

  void run_chunk(Batch& batch, index_t c) {
    const index_t b = c * batch.per;
    const index_t e = std::min(batch.total, b + batch.per);
    if (b < e) {
      const bool prev = t_in_pool_task;
      t_in_pool_task = true;
      (*batch.fn)(b, e);
      t_in_pool_task = prev;
    }
    chunks_run_.fetch_add(1, std::memory_order_relaxed);
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
      std::lock_guard<std::mutex> lk(batch.m);
      batch.cv.notify_all();
    }
  }

  void remove_from_queue(const Batch* batch) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == batch) {
        queue_.erase(it);
        return;
      }
    }
  }

  std::mutex qm_;
  std::condition_variable qcv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;

  std::mutex size_m_;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> chunks_run_{0};
  std::atomic<std::uint64_t> split_batches_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
};

}  // namespace

index_t blas_num_threads() { return g_threads.load(std::memory_order_relaxed); }

void set_blas_num_threads(index_t n) {
  g_threads.store(std::max<index_t>(1, n), std::memory_order_relaxed);
}

void parallel_ranges(index_t total, index_t grain,
                     const std::function<void(index_t, index_t)>& fn) {
  if (total <= 0) return;
  const index_t max_threads = blas_num_threads();
  const index_t chunks = std::max<index_t>(
      1, std::min(max_threads, total / std::max<index_t>(1, grain)));
  if (chunks <= 1 || t_in_pool_task) {
    fn(0, total);
    return;
  }
  WorkerPool::instance().run(total, chunks, fn);
}

PoolStats pool_stats() { return WorkerPool::instance().stats(); }

}  // namespace randla
