#include "la/parallel.hpp"

namespace randla {

namespace {

std::atomic<index_t> g_threads{
    static_cast<index_t>(std::max(1u, std::thread::hardware_concurrency()))};

}  // namespace

index_t blas_num_threads() { return g_threads.load(std::memory_order_relaxed); }

void set_blas_num_threads(index_t n) {
  g_threads.store(std::max<index_t>(1, n), std::memory_order_relaxed);
}

void parallel_ranges(index_t total, index_t grain,
                     const std::function<void(index_t, index_t)>& fn) {
  if (total <= 0) return;
  const index_t max_threads = blas_num_threads();
  const index_t chunks =
      std::max<index_t>(1, std::min(max_threads, total / std::max<index_t>(1, grain)));
  if (chunks <= 1) {
    fn(0, total);
    return;
  }
  const index_t per = (total + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(chunks - 1));
  for (index_t c = 1; c < chunks; ++c) {
    const index_t b = c * per;
    const index_t e = std::min(total, b + per);
    if (b >= e) break;
    workers.emplace_back([&fn, b, e] { fn(b, e); });
  }
  fn(0, std::min(total, per));  // this thread takes the first chunk
  for (auto& w : workers) w.join();
}

}  // namespace randla
