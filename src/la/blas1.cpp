#include "la/blas1.hpp"

#include <cmath>
#include <limits>

#include "la/simd.hpp"

namespace randla::blas {

namespace {

// Contiguous (stride-1) inner loops. Under RANDLA_SIMD_AVX2 these are
// hand-vectorized with FMA; otherwise the multi-accumulator scalar
// forms below give the optimizer the same freedom without -ffast-math.
// Strided variants stay scalar in the public entry points — every hot
// caller in the library (GEMV columns, Householder panels, QP3 norm
// downdates) is stride-1.

#if RANDLA_SIMD_AVX2

inline double dot_contig(index_t n, const double* x, const double* y) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d s2 = _mm256_setzero_pd(), s3 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4), s1);
    s2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8), _mm256_loadu_pd(y + i + 8), s2);
    s3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12), _mm256_loadu_pd(y + i + 12), s3);
  }
  for (; i + 4 <= n; i += 4)
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), s0);
  double s = simd::hsum(_mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3)));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

inline float dot_contig(index_t n, const float* x, const float* y) {
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), s0);
    s1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(y + i + 8), s1);
  }
  for (; i + 8 <= n; i += 8)
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), s0);
  float s = simd::hsum(_mm256_add_ps(s0, s1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

inline void axpy_contig(index_t n, double a, const double* x, double* y) {
  const __m256d av = _mm256_set1_pd(a);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i + 4),
                                                _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  for (; i < n; ++i) y[i] += a * x[i];
}

inline void axpy_contig(index_t n, float a, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(a);
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] += a * x[i];
}

inline void scal_contig(index_t n, double a, double* x) {
  const __m256d av = _mm256_set1_pd(a);
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] *= a;
}

inline void scal_contig(index_t n, float a, float* x) {
  const __m256 av = _mm256_set1_ps(a);
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(x + i, _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) x[i] *= a;
}

inline double abs_max_contig(index_t n, const double* x) {
  __m256d m0 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    m0 = _mm256_max_pd(m0, simd::vabs(_mm256_loadu_pd(x + i)));
  double m = simd::hmax(m0);
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

inline float abs_max_contig(index_t n, const float* x) {
  __m256 m0 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    m0 = _mm256_max_ps(m0, simd::vabs(_mm256_loadu_ps(x + i)));
  float m = simd::hmax(m0);
  for (; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

/// Sum of (x_i·scale)² — scale = 1 gives the plain sum of squares.
inline double scaled_ssq_contig(index_t n, const double* x, double scale) {
  const __m256d sv = _mm256_set1_pd(scale);
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_mul_pd(sv, _mm256_loadu_pd(x + i));
    const __m256d v1 = _mm256_mul_pd(sv, _mm256_loadu_pd(x + i + 4));
    s0 = _mm256_fmadd_pd(v0, v0, s0);
    s1 = _mm256_fmadd_pd(v1, v1, s1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_mul_pd(sv, _mm256_loadu_pd(x + i));
    s0 = _mm256_fmadd_pd(v, v, s0);
  }
  double s = simd::hsum(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) {
    const double v = scale * x[i];
    s += v * v;
  }
  return s;
}

inline float scaled_ssq_contig(index_t n, const float* x, float scale) {
  const __m256 sv = _mm256_set1_ps(scale);
  __m256 s0 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_mul_ps(sv, _mm256_loadu_ps(x + i));
    s0 = _mm256_fmadd_ps(v, v, s0);
  }
  float s = simd::hsum(s0);
  for (; i < n; ++i) {
    const float v = scale * x[i];
    s += v * v;
  }
  return s;
}

#else  // scalar fallback

template <class Real>
inline Real dot_contig(index_t n, const Real* x, const Real* y) {
  // Four-way unrolled accumulation; separate partials help the
  // optimizer vectorize without -ffast-math.
  Real s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

template <class Real>
inline void axpy_contig(index_t n, Real a, const Real* x, Real* y) {
  for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
}

template <class Real>
inline void scal_contig(index_t n, Real a, Real* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= a;
}

template <class Real>
inline Real abs_max_contig(index_t n, const Real* x) {
  Real m = 0;
  for (index_t i = 0; i < n; ++i) m = std::max(m, std::abs(x[i]));
  return m;
}

template <class Real>
inline Real scaled_ssq_contig(index_t n, const Real* x, Real scale) {
  Real s0 = 0, s1 = 0;
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const Real v0 = scale * x[i];
    const Real v1 = scale * x[i + 1];
    s0 += v0 * v0;
    s1 += v1 * v1;
  }
  if (i < n) {
    const Real v = scale * x[i];
    s0 += v * v;
  }
  return s0 + s1;
}

#endif  // RANDLA_SIMD_AVX2

}  // namespace

template <class Real>
Real dot(index_t n, const Real* x, index_t incx, const Real* y, index_t incy) {
  if (incx == 1 && incy == 1) return dot_contig(n, x, y);
  Real s = 0;
  for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

template <class Real>
Real nrm2(index_t n, const Real* x, index_t incx) {
  if (n <= 0) return Real(0);
  if (incx == 1) {
    // Two vectorized passes: an |·|-max scan picks the scaling, then a
    // (possibly scaled) sum of squares. For the common well-scaled case
    // this is one unscaled pass at full SIMD width; extreme inputs take
    // the scaled branch and keep the overflow/underflow safety of the
    // classic dlassq recurrence.
    const Real amax = abs_max_contig(n, x);
    if (amax == Real(0)) return Real(0);
    const Real big =
        std::sqrt(std::numeric_limits<Real>::max() / Real(n + 1));
    const Real small = std::sqrt(std::numeric_limits<Real>::min());
    if (amax < big && amax > small)
      return std::sqrt(scaled_ssq_contig(n, x, Real(1)));
    return amax * std::sqrt(scaled_ssq_contig(n, x, Real(1) / amax));
  }
  // Strided: scaled sum of squares, LAPACK dlassq-style.
  Real scale = 0;
  Real ssq = 1;
  for (index_t i = 0; i < n; ++i) {
    const Real v = x[i * incx];
    if (v == Real(0)) continue;
    const Real a = std::abs(v);
    if (scale < a) {
      const Real r = scale / a;
      ssq = Real(1) + ssq * r * r;
      scale = a;
    } else {
      const Real r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

template <class Real>
void axpy(index_t n, Real a, const Real* x, index_t incx, Real* y, index_t incy) {
  if (a == Real(0)) return;
  if (incx == 1 && incy == 1) {
    axpy_contig(n, a, x, y);
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += a * x[i * incx];
  }
}

template <class Real>
void scal(index_t n, Real a, Real* x, index_t incx) {
  if (incx == 1) {
    scal_contig(n, a, x);
  } else {
    for (index_t i = 0; i < n; ++i) x[i * incx] *= a;
  }
}

template <class Real>
index_t iamax(index_t n, const Real* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  Real bv = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const Real v = std::abs(x[i * incx]);
    if (v > bv) {
      bv = v;
      best = i;
    }
  }
  return best;
}

template <class Real>
void swap(index_t n, Real* x, index_t incx, Real* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) {
    const Real t = x[i * incx];
    x[i * incx] = y[i * incy];
    y[i * incy] = t;
  }
}

template <class Real>
void copy(index_t n, const Real* x, index_t incx, Real* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
  }
}

#define RANDLA_INSTANTIATE_BLAS1(Real)                                          \
  template Real dot<Real>(index_t, const Real*, index_t, const Real*, index_t); \
  template Real nrm2<Real>(index_t, const Real*, index_t);                      \
  template void axpy<Real>(index_t, Real, const Real*, index_t, Real*, index_t);\
  template void scal<Real>(index_t, Real, Real*, index_t);                      \
  template index_t iamax<Real>(index_t, const Real*, index_t);                  \
  template void swap<Real>(index_t, Real*, index_t, Real*, index_t);            \
  template void copy<Real>(index_t, const Real*, index_t, Real*, index_t);

RANDLA_INSTANTIATE_BLAS1(float)
RANDLA_INSTANTIATE_BLAS1(double)

#undef RANDLA_INSTANTIATE_BLAS1

}  // namespace randla::blas
