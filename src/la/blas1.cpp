#include "la/blas1.hpp"

#include <cmath>

namespace randla::blas {

template <class Real>
Real dot(index_t n, const Real* x, index_t incx, const Real* y, index_t incy) {
  Real s = 0;
  if (incx == 1 && incy == 1) {
    // Four-way unrolled accumulation; separate partials help the
    // optimizer vectorize without -ffast-math.
    Real s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    index_t i = 0;
    for (; i + 4 <= n; i += 4) {
      s0 += x[i] * y[i];
      s1 += x[i + 1] * y[i + 1];
      s2 += x[i + 2] * y[i + 2];
      s3 += x[i + 3] * y[i + 3];
    }
    for (; i < n; ++i) s0 += x[i] * y[i];
    s = (s0 + s1) + (s2 + s3);
  } else {
    for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  }
  return s;
}

template <class Real>
Real nrm2(index_t n, const Real* x, index_t incx) {
  // Scaled sum of squares, LAPACK dlassq-style, to avoid overflow and
  // underflow for extreme entries.
  Real scale = 0;
  Real ssq = 1;
  for (index_t i = 0; i < n; ++i) {
    const Real v = x[i * incx];
    if (v == Real(0)) continue;
    const Real a = std::abs(v);
    if (scale < a) {
      const Real r = scale / a;
      ssq = Real(1) + ssq * r * r;
      scale = a;
    } else {
      const Real r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

template <class Real>
void axpy(index_t n, Real a, const Real* x, index_t incx, Real* y, index_t incy) {
  if (a == Real(0)) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += a * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += a * x[i * incx];
  }
}

template <class Real>
void scal(index_t n, Real a, Real* x, index_t incx) {
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= a;
  } else {
    for (index_t i = 0; i < n; ++i) x[i * incx] *= a;
  }
}

template <class Real>
index_t iamax(index_t n, const Real* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  Real bv = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const Real v = std::abs(x[i * incx]);
    if (v > bv) {
      bv = v;
      best = i;
    }
  }
  return best;
}

template <class Real>
void swap(index_t n, Real* x, index_t incx, Real* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) {
    const Real t = x[i * incx];
    x[i * incx] = y[i * incy];
    y[i * incy] = t;
  }
}

template <class Real>
void copy(index_t n, const Real* x, index_t incx, Real* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
  }
}

#define RANDLA_INSTANTIATE_BLAS1(Real)                                          \
  template Real dot<Real>(index_t, const Real*, index_t, const Real*, index_t); \
  template Real nrm2<Real>(index_t, const Real*, index_t);                      \
  template void axpy<Real>(index_t, Real, const Real*, index_t, Real*, index_t);\
  template void scal<Real>(index_t, Real, Real*, index_t);                      \
  template index_t iamax<Real>(index_t, const Real*, index_t);                  \
  template void swap<Real>(index_t, Real*, index_t, Real*, index_t);            \
  template void copy<Real>(index_t, const Real*, index_t, Real*, index_t);

RANDLA_INSTANTIATE_BLAS1(float)
RANDLA_INSTANTIATE_BLAS1(double)

#undef RANDLA_INSTANTIATE_BLAS1

}  // namespace randla::blas
