// blas1.hpp — vector-vector kernels (BLAS-1).
//
// These are the kernels the paper identifies as communication-bound: MGS
// spends most of its flops here, and QP3's norm downdating is built on
// them. Vectors are passed as (n, ptr, stride) to allow row vectors of a
// column-major matrix.
#pragma once

#include "la/matrix.hpp"

namespace randla::blas {

/// dot = xᵀy.
template <class Real>
Real dot(index_t n, const Real* x, index_t incx, const Real* y, index_t incy);

/// Euclidean norm with overflow-safe scaling (as in LAPACK dnrm2).
template <class Real>
Real nrm2(index_t n, const Real* x, index_t incx);

/// y ← a·x + y.
template <class Real>
void axpy(index_t n, Real a, const Real* x, index_t incx, Real* y, index_t incy);

/// x ← a·x.
template <class Real>
void scal(index_t n, Real a, Real* x, index_t incx);

/// Index of the element with the largest |x_i| (0-based; -1 if n == 0).
template <class Real>
index_t iamax(index_t n, const Real* x, index_t incx);

/// Swap two vectors.
template <class Real>
void swap(index_t n, Real* x, index_t incx, Real* y, index_t incy);

/// y ← x.
template <class Real>
void copy(index_t n, const Real* x, index_t incx, Real* y, index_t incy);

// ---- Column-vector conveniences over views (stride-1 fast paths) ----

template <class Real>
Real dot(ConstMatrixView<Real> x, ConstMatrixView<Real> y) {
  assert(x.cols() == 1 && y.cols() == 1 && x.rows() == y.rows());
  return dot(x.rows(), x.data(), 1, y.data(), 1);
}

template <class Real>
Real nrm2(ConstMatrixView<Real> x) {
  assert(x.cols() == 1);
  return nrm2(x.rows(), x.data(), 1);
}

}  // namespace randla::blas
