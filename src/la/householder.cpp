#include "la/householder.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"

namespace randla::lapack {

template <class Real>
Real larfg(index_t n, Real& alpha, Real* x, index_t incx) {
  if (n <= 1) return Real(0);
  const Real xnorm = blas::nrm2(n - 1, x, incx);
  if (xnorm == Real(0)) return Real(0);

  // beta = -sign(alpha)·‖[alpha; x]‖, computed with hypot for safety.
  Real beta = std::hypot(alpha, xnorm);
  if (alpha > Real(0)) beta = -beta;
  const Real tau = (beta - alpha) / beta;
  blas::scal(n - 1, Real(1) / (alpha - beta), x, incx);
  alpha = beta;
  return tau;
}

template <class Real>
void larf(Side side, index_t vlen, const Real* v, index_t incv, Real tau,
          MatrixView<Real> c) {
  if (tau == Real(0) || c.empty()) return;
  if (side == Side::Left) {
    assert(vlen == c.rows());
    // w = Cᵀ v;  C ← C − τ·v·wᵀ.
    std::vector<Real> w(static_cast<std::size_t>(c.cols()));
    blas::gemv(Op::Trans, Real(1), ConstMatrixView<Real>(c), v, incv, Real(0),
               w.data(), index_t{1});
    blas::ger(-tau, v, incv, w.data(), index_t{1}, c);
  } else {
    assert(vlen == c.cols());
    // w = C v;  C ← C − τ·w·vᵀ.
    std::vector<Real> w(static_cast<std::size_t>(c.rows()));
    blas::gemv(Op::NoTrans, Real(1), ConstMatrixView<Real>(c), v, incv, Real(0),
               w.data(), index_t{1});
    blas::ger(-tau, w.data(), index_t{1}, v, incv, c);
  }
}

template <class Real>
void larft(ConstMatrixView<Real> v, const Real* tau, MatrixView<Real> t) {
  const index_t n = v.rows();
  const index_t k = v.cols();
  assert(t.rows() == k && t.cols() == k);
  t.set_zero();
  for (index_t i = 0; i < k; ++i) {
    const Real ti = tau[i];
    if (ti == Real(0)) {
      for (index_t j = 0; j <= i; ++j) t(j, i) = Real(0);
      continue;
    }
    // t(0:i, i) = −τᵢ · V(:, 0:i)ᵀ · vᵢ, exploiting the unit lower
    // trapezoidal structure: vᵢ is zero above row i and 1 at row i.
    for (index_t j = 0; j < i; ++j) {
      // dot of column j of V (rows i..n) with vᵢ (rows i..n), vᵢ[i] = 1.
      Real s = v(i, j);  // row i: vᵢ entry is implicit 1
      s += blas::dot(n - i - 1, v.col_ptr(j) + i + 1, index_t{1},
                     v.col_ptr(i) + i + 1, index_t{1});
      t(j, i) = -ti * s;
    }
    // t(0:i, i) ← T(0:i, 0:i) · t(0:i, i) (T is upper triangular).
    if (i > 0) {
      blas::trmm(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, Real(1),
                 ConstMatrixView<Real>(t.block(0, 0, i, i)),
                 t.block(0, i, i, 1));
    }
    t(i, i) = ti;
  }
}

template <class Real>
void larfb_left(Op op, ConstMatrixView<Real> v, ConstMatrixView<Real> t,
                MatrixView<Real> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = v.cols();
  assert(v.rows() == m && t.rows() == k && t.cols() == k);
  if (k == 0 || c.empty()) return;

  // W = Vᵀ C with V unit lower trapezoidal:
  //   W = C(0:k,:) (triangle part applied as trmm) + V(k:m,:)ᵀ C(k:m,:).
  Matrix<Real> w(k, n);
  w.view().copy_from(c.block(0, 0, k, n));
  blas::trmm(Side::Left, Uplo::Lower, Op::Trans, Diag::Unit, Real(1),
             v.block(0, 0, k, k), w.view());
  if (m > k) {
    blas::gemm(Op::Trans, Op::NoTrans, Real(1), v.block(k, 0, m - k, k),
               ConstMatrixView<Real>(c.block(k, 0, m - k, n)), Real(1),
               w.view());
  }
  // W ← Tᵒᵖ W.
  blas::trmm(Side::Left, Uplo::Upper, op, Diag::NonUnit, Real(1), t, w.view());
  // C ← C − V W.
  if (m > k) {
    blas::gemm(Op::NoTrans, Op::NoTrans, Real(-1), v.block(k, 0, m - k, k),
               ConstMatrixView<Real>(w.view()), Real(1),
               c.block(k, 0, m - k, n));
  }
  blas::trmm(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, Real(1),
             v.block(0, 0, k, k), w.view());
  for (index_t j = 0; j < n; ++j) {
    Real* cj = c.col_ptr(j);
    const Real* wj = w.data() + j * k;
    for (index_t i = 0; i < k; ++i) cj[i] -= wj[i];
  }
}

namespace {

// Unblocked QR on a panel (LAPACK geqr2).
template <class Real>
void geqr2(MatrixView<Real> a, Real* tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  for (index_t j = 0; j < k; ++j) {
    Real& ajj = a(j, j);
    tau[j] = larfg(m - j, ajj, a.col_ptr(j) + j + 1, index_t{1});
    if (j + 1 < n && tau[j] != Real(0)) {
      // Apply H to the trailing columns; temporarily set v₀ = 1.
      const Real saved = ajj;
      ajj = Real(1);
      larf(Side::Left, m - j, a.col_ptr(j) + j, index_t{1}, tau[j],
           a.block(j, j + 1, m - j, n - j - 1));
      ajj = saved;
    }
  }
}

}  // namespace

template <class Real>
void geqrf(MatrixView<Real> a, std::vector<Real>& tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), Real(0));
  constexpr index_t nb = 32;

  Matrix<Real> t(nb, nb);
  for (index_t j = 0; j < k; j += nb) {
    const index_t jb = std::min(nb, k - j);
    auto panel = a.block(j, j, m - j, jb);
    geqr2(panel, tau.data() + j);
    const index_t rest = n - (j + jb);
    if (rest > 0) {
      auto tb = t.block(0, 0, jb, jb);
      larft(ConstMatrixView<Real>(panel), tau.data() + j, tb);
      larfb_left(Op::Trans, ConstMatrixView<Real>(panel),
                 ConstMatrixView<Real>(tb), a.block(j, j + jb, m - j, rest));
    }
  }
}

template <class Real>
void orgqr(MatrixView<Real> a, const std::vector<Real>& tau, index_t k) {
  const index_t m = a.rows();
  assert(k <= static_cast<index_t>(tau.size()) && k <= a.cols() && k <= m);

  // org2r: initialize the k columns and accumulate reflectors backwards.
  for (index_t j = k - 1; j >= 0; --j) {
    // Columns to the right (already formed) get H_j applied.
    if (j + 1 < k && tau[j] != Real(0)) {
      Real& ajj = a(j, j);
      const Real saved = ajj;
      ajj = Real(1);
      larf(Side::Left, m - j, a.col_ptr(j) + j, index_t{1}, tau[j],
           a.block(j, j + 1, m - j, k - j - 1));
      ajj = saved;
    }
    // Form column j of Q: H_j e_j = e_j − τ_j v_j.
    Real* cj = a.col_ptr(j);
    for (index_t i = 0; i < j; ++i) cj[i] = Real(0);
    const Real tj = tau[j];
    cj[j] = Real(1) - tj;
    for (index_t i = j + 1; i < m; ++i) cj[i] = -tj * cj[i];
    if (j == 0) break;
  }
}

template <class Real>
void ormqr_left(Op op, ConstMatrixView<Real> a, const std::vector<Real>& tau,
                MatrixView<Real> c) {
  const index_t m = c.rows();
  const index_t k = static_cast<index_t>(tau.size());
  assert(a.rows() == m && a.cols() >= k);

  // Q = H₁···H_k. Qᵀ C applies H₁ first; Q C applies H_k first.
  std::vector<Real> v(static_cast<std::size_t>(m));
  auto apply = [&](index_t j) {
    if (tau[j] == Real(0)) return;
    // v = [zeros(j); 1; A(j+1:m, j)]
    for (index_t i = 0; i < j; ++i) v[static_cast<std::size_t>(i)] = Real(0);
    v[static_cast<std::size_t>(j)] = Real(1);
    for (index_t i = j + 1; i < m; ++i)
      v[static_cast<std::size_t>(i)] = a(i, j);
    larf(Side::Left, m, v.data(), index_t{1}, tau[j], c);
  };
  if (op == Op::Trans) {
    for (index_t j = 0; j < k; ++j) apply(j);
  } else {
    for (index_t j = k - 1; j >= 0; --j) {
      apply(j);
      if (j == 0) break;
    }
  }
}

template <class Real>
void qr_explicit(MatrixView<Real> a, MatrixView<Real> r) {
  const index_t n = a.cols();
  assert(a.rows() >= n && r.rows() == n && r.cols() == n);
  std::vector<Real> tau;
  geqrf(a, tau);
  r.set_zero();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  orgqr(a, tau, n);
}

#define RANDLA_INSTANTIATE_HH(Real)                                            \
  template Real larfg<Real>(index_t, Real&, Real*, index_t);                   \
  template void larf<Real>(Side, index_t, const Real*, index_t, Real,          \
                           MatrixView<Real>);                                  \
  template void larft<Real>(ConstMatrixView<Real>, const Real*,                \
                            MatrixView<Real>);                                 \
  template void larfb_left<Real>(Op, ConstMatrixView<Real>,                    \
                                 ConstMatrixView<Real>, MatrixView<Real>);     \
  template void geqrf<Real>(MatrixView<Real>, std::vector<Real>&);             \
  template void orgqr<Real>(MatrixView<Real>, const std::vector<Real>&,        \
                            index_t);                                          \
  template void ormqr_left<Real>(Op, ConstMatrixView<Real>,                    \
                                 const std::vector<Real>&, MatrixView<Real>);  \
  template void qr_explicit<Real>(MatrixView<Real>, MatrixView<Real>);

RANDLA_INSTANTIATE_HH(float)
RANDLA_INSTANTIATE_HH(double)

#undef RANDLA_INSTANTIATE_HH

}  // namespace randla::lapack
