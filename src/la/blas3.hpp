// blas3.hpp — matrix-matrix kernels (BLAS-3).
//
// GEMM is the kernel the entire paper pivots on: pruned Gaussian sampling
// is one GEMM, the power iteration is a chain of GEMMs, and CholQR routes
// its flops through GEMM-class operations. Our implementation is a
// cache-blocked, packed, register-tiled design (GotoBLAS structure) so the
// BLAS-3 vs BLAS-2 performance gap the paper measures exists here too.
#pragma once

#include "la/matrix.hpp"

namespace randla::blas {

/// C ← α·op(A)·op(B) + β·C.
template <class Real>
void gemm(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
          ConstMatrixView<Real> b, Real beta, MatrixView<Real> c);

/// Symmetric rank-k update on one triangle:
/// C ← α·A·Aᵀ + β·C (op == NoTrans) or C ← α·Aᵀ·A + β·C (op == Trans).
/// Only the `uplo` triangle of C is referenced/written.
template <class Real>
void syrk(Uplo uplo, Op op, Real alpha, ConstMatrixView<Real> a, Real beta,
          MatrixView<Real> c);

/// Fill the other triangle of C so it is fully symmetric (helper for
/// code that wants a dense Gram matrix after syrk).
template <class Real>
void symmetrize(Uplo stored, MatrixView<Real> c);

/// Triangular solve with multiple right-hand sides:
/// B ← α·op(T)⁻¹·B (side == Left) or B ← α·B·op(T)⁻¹ (side == Right).
template <class Real>
void trsm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b);

/// Triangular matrix multiply:
/// B ← α·op(T)·B (side == Left) or B ← α·B·op(T) (side == Right).
template <class Real>
void trmm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b);

}  // namespace randla::blas
