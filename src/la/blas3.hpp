// blas3.hpp — matrix-matrix kernels (BLAS-3).
//
// GEMM is the kernel the entire paper pivots on: pruned Gaussian sampling
// is one GEMM, the power iteration is a chain of GEMMs, and CholQR routes
// its flops through GEMM-class operations. Our implementation is a
// cache-blocked, packed, register-tiled design (GotoBLAS structure) so the
// BLAS-3 vs BLAS-2 performance gap the paper measures exists here too.
#pragma once

#include "la/matrix.hpp"

namespace randla::blas {

/// Name of the compiled-in microkernel ISA (e.g. "avx2-fma (dgemm 8x6,
/// sgemm 16x6)" or "scalar (gemm 4x8)"), decided at compile time by the
/// RANDLA_NATIVE_ARCH build option. Benches record this next to flop
/// rates so numbers are attributable to a kernel.
const char* kernel_arch();

/// The row×column tile grid a GEMM of the given shape would be split
/// into at the given thread count. {1, 1} means serial. The k dimension
/// is never split, so results are bitwise identical for every grid.
/// Exposed so tests can assert the policy (e.g. that tall-skinny and
/// short-wide sampling shapes actually distribute).
struct GemmGrid {
  index_t row_tiles = 1;
  index_t col_tiles = 1;
};
GemmGrid gemm_parallel_grid(index_t m, index_t n, index_t k, index_t threads);

/// C ← α·op(A)·op(B) + β·C.
template <class Real>
void gemm(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
          ConstMatrixView<Real> b, Real beta, MatrixView<Real> c);

/// One independent GEMM problem in a batch: c ← α·op(a)·op(b) + β·c.
/// Alpha is folded at pack time and beta fused into the first kc-block
/// write-out per problem, exactly as in the single-problem path.
template <class Real>
struct GemmProblem {
  Op opa = Op::NoTrans;
  Op opb = Op::NoTrans;
  Real alpha = Real(1);
  Real beta = Real(0);
  ConstMatrixView<Real> a;
  ConstMatrixView<Real> b;
  MatrixView<Real> c;
};

/// Batched GEMM: N independent problems scheduled as ONE 2D tile walk
/// over the persistent worker pool. Each problem is split by the same
/// gemm_parallel_grid policy as `gemm`, then all (problem, tile) work
/// items are flattened into a single parallel_ranges sweep — so many
/// small ℓ×n sampling GEMMs that would each run serially (below the
/// fan-out threshold) amortize one fork-join instead of N. Results are
/// bitwise identical to calling `gemm` on each problem in a loop, at
/// any thread count (k is never split; per-C-element summation order is
/// fixed). Problems must have disjoint C outputs.
template <class Real>
void gemm_batched(const GemmProblem<Real>* problems, index_t count);

/// Symmetric rank-k update on one triangle:
/// C ← α·A·Aᵀ + β·C (op == NoTrans) or C ← α·Aᵀ·A + β·C (op == Trans).
/// Only the `uplo` triangle of C is referenced/written.
template <class Real>
void syrk(Uplo uplo, Op op, Real alpha, ConstMatrixView<Real> a, Real beta,
          MatrixView<Real> c);

/// Fill the other triangle of C so it is fully symmetric (helper for
/// code that wants a dense Gram matrix after syrk).
template <class Real>
void symmetrize(Uplo stored, MatrixView<Real> c);

/// Triangular solve with multiple right-hand sides:
/// B ← α·op(T)⁻¹·B (side == Left) or B ← α·B·op(T)⁻¹ (side == Right).
template <class Real>
void trsm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b);

/// Triangular matrix multiply:
/// B ← α·op(T)·B (side == Left) or B ← α·B·op(T) (side == Right).
template <class Real>
void trmm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b);

}  // namespace randla::blas
