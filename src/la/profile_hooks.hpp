// profile_hooks.hpp — per-kernel profiling hooks for the BLAS-3 entry
// points (DESIGN.md §9).
//
// Each public kernel (gemm/syrk/trsm/trmm) opens a KernelScope at entry;
// on destruction the scope records calls/seconds/flops counters and the
// achieved Gflop/s into obs::Registry::global(), plus — for GEMM — an
// efficiency gauge against the calibrated K40c model's predicted rate.
// When profiling is off (the default) a scope costs one relaxed atomic
// load; the hot loops themselves are never touched. Kernels nest
// (syrk/trsm/trmm tile through gemm), so a thread-local depth counter
// attributes work to the outermost kernel only — no double counting.
#pragma once

#include <chrono>

namespace randla::la_prof {

/// RAII guard for one kernel invocation. `kernel` must be a string
/// literal; `flops` the invocation's useful flop count. `inner`/`major`
/// (GEMM only) feed the model-efficiency gauge; pass 0 to skip it.
class KernelScope {
 public:
  KernelScope(const char* kernel, double flops, long long inner = 0,
              long long major = 0);
  ~KernelScope();
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  const char* kernel_;
  double flops_;
  long long inner_, major_;
  bool entered_ = false;  ///< bumped the nesting depth (profiling was on)
  bool armed_ = false;    ///< outermost kernel: records on destruction
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace randla::la_prof
