// simd.hpp — compile-time ISA dispatch for the BLAS kernel core.
//
// The paper's argument is that random sampling wins because its flops
// concentrate in BLAS-3; that only holds if the kernels underneath run
// at hardware speed. This header selects between hand-written AVX2/FMA
// inner kernels and the portable scalar fallback at compile time: the
// library is built with `-march=native` when the CMake option
// RANDLA_NATIVE_ARCH is ON (the default), which defines __AVX2__ and
// __FMA__ on capable hosts; with the option OFF every kernel compiles
// to the scalar path and produces identical-API, portable code.
//
// Only .cpp files include this header, so the public headers stay free
// of ISA assumptions and downstream TUs need no special flags. The
// selected ISA is reported at runtime via blas::kernel_arch().
#pragma once

#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)
#define RANDLA_SIMD_AVX2 1
#include <immintrin.h>
#else
#define RANDLA_SIMD_AVX2 0
#endif

namespace randla::simd {

#if RANDLA_SIMD_AVX2

inline constexpr const char* kArchName = "avx2-fma";

/// Horizontal sum of a 4-double vector.
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Horizontal sum of an 8-float vector.
inline float hsum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// Horizontal max of a 4-double vector.
inline double hmax(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Horizontal max of an 8-float vector.
inline float hmax(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// |v| via sign-bit mask (no branches, matches std::abs for finite x).
inline __m256d vabs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}
inline __m256 vabs(__m256 v) {
  return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
}

#else

inline constexpr const char* kArchName = "scalar";

#endif  // RANDLA_SIMD_AVX2

}  // namespace randla::simd
