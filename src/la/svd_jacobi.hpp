// svd_jacobi.hpp — one-sided Jacobi SVD.
//
// Used as the verification oracle: true singular values give σ_{k+1}
// for checking the Halko et al. error bound, and test-matrix generators
// are validated against the spectra they claim to produce. One-sided
// Jacobi is slow (O(mn²) per sweep) but accurate to full precision,
// which is exactly what an oracle needs.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace randla::lapack {

template <class Real>
struct SvdResult {
  Matrix<Real> u;                 ///< m×r left singular vectors
  std::vector<Real> sigma;        ///< r singular values, descending
  Matrix<Real> v;                 ///< n×r right singular vectors
  index_t sweeps = 0;             ///< Jacobi sweeps used
  bool converged = false;
};

/// Full thin SVD A = U·diag(σ)·Vᵀ with r = min(m, n).
template <class Real>
SvdResult<Real> svd_jacobi(ConstMatrixView<Real> a, Real tol = Real(0),
                           index_t max_sweeps = 60);

/// Singular values only (descending).
template <class Real>
std::vector<Real> singular_values(ConstMatrixView<Real> a);

}  // namespace randla::lapack
