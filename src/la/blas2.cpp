#include "la/blas2.hpp"

#include "la/blas1.hpp"

namespace randla::blas {

template <class Real>
void gemv(Op op, Real alpha, ConstMatrixView<Real> a, const Real* x, index_t incx,
          Real beta, Real* y, index_t incy) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t ylen = (op == Op::NoTrans) ? m : n;

  if (beta == Real(0)) {
    for (index_t i = 0; i < ylen; ++i) y[i * incy] = Real(0);
  } else if (beta != Real(1)) {
    scal(ylen, beta, y, incy);
  }
  if (alpha == Real(0) || m == 0 || n == 0) return;

  if (op == Op::NoTrans) {
    // y += alpha * A x: accumulate column-wise (unit-stride columns).
    for (index_t j = 0; j < n; ++j) {
      const Real xj = alpha * x[j * incx];
      if (xj == Real(0)) continue;
      axpy(m, xj, a.col_ptr(j), index_t{1}, y, incy);
    }
  } else {
    // y += alpha * Aᵀ x: one dot product per column.
    for (index_t j = 0; j < n; ++j) {
      y[j * incy] += alpha * dot(m, a.col_ptr(j), index_t{1}, x, incx);
    }
  }
}

template <class Real>
void ger(Real alpha, const Real* x, index_t incx, const Real* y, index_t incy,
         MatrixView<Real> a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (alpha == Real(0)) return;
  for (index_t j = 0; j < n; ++j) {
    const Real yj = alpha * y[j * incy];
    if (yj == Real(0)) continue;
    axpy(m, yj, x, incx, a.col_ptr(j), index_t{1});
  }
}

template <class Real>
void trsv(Uplo uplo, Op op, Diag diag, ConstMatrixView<Real> t, Real* x,
          index_t incx) {
  const index_t n = t.rows();
  assert(t.cols() == n);
  const bool unit = diag == Diag::Unit;

  // The four (uplo, op) cases reduce to forward or backward substitution.
  const bool forward = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  if (op == Op::NoTrans) {
    if (forward) {
      for (index_t i = 0; i < n; ++i) {
        Real s = x[i * incx];
        for (index_t j = 0; j < i; ++j) s -= t(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        Real s = x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s -= t(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    }
  } else {
    if (forward) {
      for (index_t i = 0; i < n; ++i) {
        Real s = x[i * incx];
        for (index_t j = 0; j < i; ++j) s -= t(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        Real s = x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s -= t(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    }
  }
}

#define RANDLA_INSTANTIATE_BLAS2(Real)                                         \
  template void gemv<Real>(Op, Real, ConstMatrixView<Real>, const Real*,       \
                           index_t, Real, Real*, index_t);                     \
  template void ger<Real>(Real, const Real*, index_t, const Real*, index_t,    \
                          MatrixView<Real>);                                   \
  template void trsv<Real>(Uplo, Op, Diag, ConstMatrixView<Real>, Real*,       \
                           index_t);

RANDLA_INSTANTIATE_BLAS2(float)
RANDLA_INSTANTIATE_BLAS2(double)

#undef RANDLA_INSTANTIATE_BLAS2

}  // namespace randla::blas
