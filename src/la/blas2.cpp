#include "la/blas2.hpp"

#include "la/blas1.hpp"
#include "la/simd.hpp"

namespace randla::blas {

namespace {

// y += a0·c0 + a1·c1 + a2·c2 + a3·c3 over stride-1 vectors: the fused
// four-column update keeps y in registers across four columns instead
// of streaming it through memory once per column (4× less y traffic
// than the axpy-per-column form).
template <class Real>
inline void axpy4_contig(index_t m, Real a0, const Real* c0, Real a1,
                         const Real* c1, Real a2, const Real* c2, Real a3,
                         const Real* c3, Real* __restrict__ y) {
#if RANDLA_SIMD_AVX2
  if constexpr (std::is_same_v<Real, double>) {
    const __m256d v0 = _mm256_set1_pd(a0), v1 = _mm256_set1_pd(a1);
    const __m256d v2 = _mm256_set1_pd(a2), v3 = _mm256_set1_pd(a3);
    index_t i = 0;
    for (; i + 4 <= m; i += 4) {
      __m256d acc = _mm256_loadu_pd(y + i);
      acc = _mm256_fmadd_pd(v0, _mm256_loadu_pd(c0 + i), acc);
      acc = _mm256_fmadd_pd(v1, _mm256_loadu_pd(c1 + i), acc);
      acc = _mm256_fmadd_pd(v2, _mm256_loadu_pd(c2 + i), acc);
      acc = _mm256_fmadd_pd(v3, _mm256_loadu_pd(c3 + i), acc);
      _mm256_storeu_pd(y + i, acc);
    }
    for (; i < m; ++i)
      y[i] += a0 * c0[i] + a1 * c1[i] + a2 * c2[i] + a3 * c3[i];
    return;
  } else if constexpr (std::is_same_v<Real, float>) {
    const __m256 v0 = _mm256_set1_ps(a0), v1 = _mm256_set1_ps(a1);
    const __m256 v2 = _mm256_set1_ps(a2), v3 = _mm256_set1_ps(a3);
    index_t i = 0;
    for (; i + 8 <= m; i += 8) {
      __m256 acc = _mm256_loadu_ps(y + i);
      acc = _mm256_fmadd_ps(v0, _mm256_loadu_ps(c0 + i), acc);
      acc = _mm256_fmadd_ps(v1, _mm256_loadu_ps(c1 + i), acc);
      acc = _mm256_fmadd_ps(v2, _mm256_loadu_ps(c2 + i), acc);
      acc = _mm256_fmadd_ps(v3, _mm256_loadu_ps(c3 + i), acc);
      _mm256_storeu_ps(y + i, acc);
    }
    for (; i < m; ++i)
      y[i] += a0 * c0[i] + a1 * c1[i] + a2 * c2[i] + a3 * c3[i];
    return;
  }
#endif
  for (index_t i = 0; i < m; ++i)
    y[i] += a0 * c0[i] + a1 * c1[i] + a2 * c2[i] + a3 * c3[i];
}

// Two simultaneous dot products against a shared x (Aᵀx case): halves
// the passes over x relative to dot-per-column.
template <class Real>
inline void dot2_contig(index_t m, const Real* c0, const Real* c1,
                        const Real* x, Real& d0, Real& d1) {
#if RANDLA_SIMD_AVX2
  if constexpr (std::is_same_v<Real, double>) {
    __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
    index_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const __m256d xv = _mm256_loadu_pd(x + i);
      s0 = _mm256_fmadd_pd(_mm256_loadu_pd(c0 + i), xv, s0);
      s1 = _mm256_fmadd_pd(_mm256_loadu_pd(c1 + i), xv, s1);
    }
    double r0 = simd::hsum(s0), r1 = simd::hsum(s1);
    for (; i < m; ++i) {
      r0 += c0[i] * x[i];
      r1 += c1[i] * x[i];
    }
    d0 = r0;
    d1 = r1;
    return;
  } else if constexpr (std::is_same_v<Real, float>) {
    __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
    index_t i = 0;
    for (; i + 8 <= m; i += 8) {
      const __m256 xv = _mm256_loadu_ps(x + i);
      s0 = _mm256_fmadd_ps(_mm256_loadu_ps(c0 + i), xv, s0);
      s1 = _mm256_fmadd_ps(_mm256_loadu_ps(c1 + i), xv, s1);
    }
    float r0 = simd::hsum(s0), r1 = simd::hsum(s1);
    for (; i < m; ++i) {
      r0 += c0[i] * x[i];
      r1 += c1[i] * x[i];
    }
    d0 = r0;
    d1 = r1;
    return;
  }
#endif
  Real r0 = 0, r1 = 0;
  for (index_t i = 0; i < m; ++i) {
    r0 += c0[i] * x[i];
    r1 += c1[i] * x[i];
  }
  d0 = r0;
  d1 = r1;
}

}  // namespace

template <class Real>
void gemv(Op op, Real alpha, ConstMatrixView<Real> a, const Real* x, index_t incx,
          Real beta, Real* y, index_t incy) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t ylen = (op == Op::NoTrans) ? m : n;

  if (beta == Real(0)) {
    for (index_t i = 0; i < ylen; ++i) y[i * incy] = Real(0);
  } else if (beta != Real(1)) {
    scal(ylen, beta, y, incy);
  }
  if (alpha == Real(0) || m == 0 || n == 0) return;

  if (op == Op::NoTrans) {
    // y += alpha·A·x, accumulated column-wise (unit-stride columns).
    if (incy == 1) {
      index_t j = 0;
      for (; j + 4 <= n; j += 4) {
        axpy4_contig(m, alpha * x[j * incx], a.col_ptr(j),
                     alpha * x[(j + 1) * incx], a.col_ptr(j + 1),
                     alpha * x[(j + 2) * incx], a.col_ptr(j + 2),
                     alpha * x[(j + 3) * incx], a.col_ptr(j + 3), y);
      }
      for (; j < n; ++j)
        axpy(m, alpha * x[j * incx], a.col_ptr(j), index_t{1}, y, incy);
    } else {
      for (index_t j = 0; j < n; ++j) {
        const Real xj = alpha * x[j * incx];
        if (xj == Real(0)) continue;
        axpy(m, xj, a.col_ptr(j), index_t{1}, y, incy);
      }
    }
  } else {
    // y += alpha·Aᵀx: dot products against a shared x, two at a time.
    if (incx == 1) {
      index_t j = 0;
      for (; j + 2 <= n; j += 2) {
        Real d0, d1;
        dot2_contig(m, a.col_ptr(j), a.col_ptr(j + 1), x, d0, d1);
        y[j * incy] += alpha * d0;
        y[(j + 1) * incy] += alpha * d1;
      }
      for (; j < n; ++j)
        y[j * incy] += alpha * dot(m, a.col_ptr(j), index_t{1}, x, incx);
    } else {
      for (index_t j = 0; j < n; ++j)
        y[j * incy] += alpha * dot(m, a.col_ptr(j), index_t{1}, x, incx);
    }
  }
}

template <class Real>
void ger(Real alpha, const Real* x, index_t incx, const Real* y, index_t incy,
         MatrixView<Real> a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (alpha == Real(0)) return;
  if (incx == 1) {
    // Columns of A are stride-1: fuse four rank-1 columns per pass over
    // x so x stays in cache/registers (mirrors the gemv blocking).
    index_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // A(:, j..j+3) += x · alpha·y(j..j+3)ᵀ — four independent axpys
      // sharing the streamed x; keep them as axpy calls (vectorized)
      // since the destinations differ.
      axpy(m, alpha * y[j * incy], x, index_t{1}, a.col_ptr(j), index_t{1});
      axpy(m, alpha * y[(j + 1) * incy], x, index_t{1}, a.col_ptr(j + 1),
           index_t{1});
      axpy(m, alpha * y[(j + 2) * incy], x, index_t{1}, a.col_ptr(j + 2),
           index_t{1});
      axpy(m, alpha * y[(j + 3) * incy], x, index_t{1}, a.col_ptr(j + 3),
           index_t{1});
    }
    for (; j < n; ++j)
      axpy(m, alpha * y[j * incy], x, index_t{1}, a.col_ptr(j), index_t{1});
    return;
  }
  for (index_t j = 0; j < n; ++j) {
    const Real yj = alpha * y[j * incy];
    if (yj == Real(0)) continue;
    axpy(m, yj, x, incx, a.col_ptr(j), index_t{1});
  }
}

template <class Real>
void trsv(Uplo uplo, Op op, Diag diag, ConstMatrixView<Real> t, Real* x,
          index_t incx) {
  const index_t n = t.rows();
  assert(t.cols() == n);
  const bool unit = diag == Diag::Unit;

  // The four (uplo, op) cases reduce to forward or backward substitution.
  const bool forward = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  if (op == Op::NoTrans) {
    if (forward) {
      for (index_t i = 0; i < n; ++i) {
        Real s = x[i * incx];
        for (index_t j = 0; j < i; ++j) s -= t(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        Real s = x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s -= t(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    }
  } else {
    // op == Trans: the inner sweep runs down a stored column of T,
    // which is stride-1 — use the vectorized dot when x is too.
    if (forward) {
      for (index_t i = 0; i < n; ++i) {
        Real s = x[i * incx];
        if (incx == 1)
          s -= dot(i, t.col_ptr(i), index_t{1}, x, index_t{1});
        else
          for (index_t j = 0; j < i; ++j) s -= t(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        Real s = x[i * incx];
        if (incx == 1)
          s -= dot(n - 1 - i, t.col_ptr(i) + i + 1, index_t{1}, x + i + 1,
                   index_t{1});
        else
          for (index_t j = i + 1; j < n; ++j) s -= t(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / t(i, i);
      }
    }
  }
}

#define RANDLA_INSTANTIATE_BLAS2(Real)                                         \
  template void gemv<Real>(Op, Real, ConstMatrixView<Real>, const Real*,       \
                           index_t, Real, Real*, index_t);                     \
  template void ger<Real>(Real, const Real*, index_t, const Real*, index_t,    \
                          MatrixView<Real>);                                   \
  template void trsv<Real>(Uplo, Op, Diag, ConstMatrixView<Real>, Real*,       \
                           index_t);

RANDLA_INSTANTIATE_BLAS2(float)
RANDLA_INSTANTIATE_BLAS2(double)

#undef RANDLA_INSTANTIATE_BLAS2

}  // namespace randla::blas
