// blas2.hpp — matrix-vector kernels (BLAS-2).
//
// GEMV is the workhorse of CGS, HHQR and QP3 panel factorization; the
// paper's Figure 8 contrasts its memory-bound throughput against GEMM.
#pragma once

#include "la/matrix.hpp"

namespace randla::blas {

/// y ← α·op(A)·x + β·y. x and y are stride-`incx`/`incy` vectors of the
/// appropriate lengths (op(A) is rows×cols after the transpose).
template <class Real>
void gemv(Op op, Real alpha, ConstMatrixView<Real> a, const Real* x, index_t incx,
          Real beta, Real* y, index_t incy);

/// View-based convenience: x, y are column views.
template <class Real>
void gemv(Op op, Real alpha, ConstMatrixView<Real> a, ConstMatrixView<Real> x,
          Real beta, MatrixView<Real> y) {
  assert(x.cols() == 1 && y.cols() == 1);
  const index_t need_x = (op == Op::NoTrans) ? a.cols() : a.rows();
  const index_t need_y = (op == Op::NoTrans) ? a.rows() : a.cols();
  assert(x.rows() == need_x && y.rows() == need_y);
  (void)need_x;
  (void)need_y;
  gemv(op, alpha, a, x.data(), index_t{1}, beta, y.data(), index_t{1});
}

/// Rank-1 update A ← A + α·x·yᵀ.
template <class Real>
void ger(Real alpha, const Real* x, index_t incx, const Real* y, index_t incy,
         MatrixView<Real> a);

/// Triangular solve with a single right-hand side: x ← op(T)⁻¹·x.
template <class Real>
void trsv(Uplo uplo, Op op, Diag diag, ConstMatrixView<Real> t, Real* x,
          index_t incx);

}  // namespace randla::blas
