#include "la/blas3.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/parallel.hpp"
#include "la/profile_hooks.hpp"
#include "la/simd.hpp"

namespace randla::blas {

namespace {

// Cache-blocking parameters (GotoBLAS naming): a KC×NC panel of B lives
// in L2/L3, an MC×KC panel of A in L1/L2, and the microkernel keeps an
// MR×NR tile of C in registers. MR/NR depend on the ISA: the AVX2/FMA
// kernels widen the register tile to the vector width (double: two
// 4-lane accumulator columns ×6 = 12 ymm registers; float: two 8-lane
// columns ×6), the portable fallback keeps the narrow scalar tile.
constexpr index_t kMC = 128;
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;

template <class Real>
struct Tile {
  static constexpr index_t MR = 4;
  static constexpr index_t NR = 8;
};

#if RANDLA_SIMD_AVX2
template <>
struct Tile<double> {
  static constexpr index_t MR = 8;  // 2 ymm of 4 doubles
  static constexpr index_t NR = 6;
};
template <>
struct Tile<float> {
  static constexpr index_t MR = 16;  // 2 ymm of 8 floats
  static constexpr index_t NR = 6;
};
#endif

// Parallel tiling policy: a GEMM is split into a row_tiles×col_tiles
// grid of independent C blocks (the k dimension is never split, so the
// summation order — and therefore the bits — never depend on the
// thread count). Grains keep each tile at a full packed panel.
constexpr index_t kRowGrain = 256;
constexpr index_t kColGrain = 64;
// Don't fan out below ~8 Mflop (2·m·n·k); fork-join bookkeeping would
// dominate.
constexpr double kMinParallelFlops = 8.0e6;

// Pack an mc×kc block of op(A) (top-left at (i0, k0) of op(A)) into
// row-panels of height MR: panel p holds rows [p*MR, p*MR+MR), stored
// as kc groups of MR contiguous elements. `alpha` is folded in here —
// each packed element is alpha·a — so the microkernel and the C
// write-out never touch alpha again.
template <class Real>
void pack_a(ConstMatrixView<Real> a, Op opa, index_t i0, index_t k0, index_t mc,
            index_t kc, Real alpha, Real* dst) {
  constexpr index_t MR = Tile<Real>::MR;
  if (opa == Op::NoTrans) {
    // op(A) rows are stored contiguously down each source column:
    // full panels with alpha == 1 are straight memcpys.
    for (index_t p = 0; p < mc; p += MR) {
      const index_t pr = std::min(MR, mc - p);
      const Real* src = &a(i0 + p, k0);
      const index_t lda = a.ld();
      if (pr == MR && alpha == Real(1)) {
        for (index_t k = 0; k < kc; ++k) {
          std::memcpy(dst, src + k * lda, MR * sizeof(Real));
          dst += MR;
        }
      } else {
        for (index_t k = 0; k < kc; ++k) {
          const Real* col = src + k * lda;
          for (index_t r = 0; r < pr; ++r) *dst++ = alpha * col[r];
          for (index_t r = pr; r < MR; ++r) *dst++ = Real(0);
        }
      }
    }
    return;
  }
  for (index_t p = 0; p < mc; p += MR) {
    const index_t pr = std::min(MR, mc - p);
    for (index_t k = 0; k < kc; ++k) {
      for (index_t r = 0; r < pr; ++r)
        *dst++ = alpha * a(k0 + k, i0 + p + r);
      for (index_t r = pr; r < MR; ++r) *dst++ = Real(0);
    }
  }
}

// Pack a kc×nc block of op(B) (top-left at (k0, j0) of op(B)) into
// column-panels of width NR: panel q holds columns [q*NR, q*NR+NR),
// stored as kc groups of NR contiguous elements.
template <class Real>
void pack_b(ConstMatrixView<Real> b, Op opb, index_t k0, index_t j0, index_t kc,
            index_t nc, Real* dst) {
  constexpr index_t NR = Tile<Real>::NR;
  if (opb == Op::NoTrans) {
    // op(B)'s k index runs down stored columns, so stream each source
    // column once (contiguous reads, NR-strided writes) instead of
    // revisiting all NR columns per k.
    for (index_t q = 0; q < nc; q += NR) {
      const index_t qc = std::min(NR, nc - q);
      for (index_t c = 0; c < qc; ++c) {
        const Real* src = &b(k0, j0 + q + c);
        Real* out = dst + c;
        for (index_t k = 0; k < kc; ++k) out[k * NR] = src[k];
      }
      for (index_t c = qc; c < NR; ++c) {
        Real* out = dst + c;
        for (index_t k = 0; k < kc; ++k) out[k * NR] = Real(0);
      }
      dst += kc * NR;
    }
    return;
  }
  // op(B) == Bᵀ: a k-group of NR elements is NR consecutive rows of one
  // stored column — full panels are straight memcpys.
  for (index_t q = 0; q < nc; q += NR) {
    const index_t qc = std::min(NR, nc - q);
    const index_t ldb = b.ld();
    const Real* src = &b(j0 + q, k0);
    if (qc == NR) {
      for (index_t k = 0; k < kc; ++k) {
        std::memcpy(dst, src + k * ldb, NR * sizeof(Real));
        dst += NR;
      }
    } else {
      for (index_t k = 0; k < kc; ++k) {
        const Real* col = src + k * ldb;
        for (index_t c = 0; c < qc; ++c) *dst++ = col[c];
        for (index_t c = qc; c < NR; ++c) *dst++ = Real(0);
      }
    }
  }
}

// MR×NR register-tile microkernel: acc = Ap·Bp over kc terms, where Ap
// is an MR-row packed panel (alpha folded in) and Bp an NR-column
// packed panel. acc is column-major: acc[cc*MR + r].
template <class Real>
inline void micro_kernel(index_t kc, const Real* __restrict__ ap,
                         const Real* __restrict__ bp, Real* __restrict__ acc) {
  constexpr index_t MR = Tile<Real>::MR;
  constexpr index_t NR = Tile<Real>::NR;
  Real c[MR * NR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const Real* a = ap + k * MR;
    const Real* b = bp + k * NR;
    for (index_t cc = 0; cc < NR; ++cc) {
      const Real bv = b[cc];
      Real* ccol = c + cc * MR;
      for (index_t r = 0; r < MR; ++r) ccol[r] += a[r] * bv;
    }
  }
  for (index_t i = 0; i < MR * NR; ++i) acc[i] = c[i];
}

#if RANDLA_SIMD_AVX2

// 8×6 double microkernel: 12 ymm accumulators (two 4-lane column
// halves × 6 columns), one broadcast per packed B element, FMA
// throughput-bound.
template <>
inline void micro_kernel<double>(index_t kc, const double* __restrict__ ap,
                                 const double* __restrict__ bp,
                                 double* __restrict__ acc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  __m256d c40 = _mm256_setzero_pd(), c41 = _mm256_setzero_pd();
  __m256d c50 = _mm256_setzero_pd(), c51 = _mm256_setzero_pd();
  for (index_t k = 0; k < kc; ++k) {
    const __m256d a0 = _mm256_loadu_pd(ap);
    const __m256d a1 = _mm256_loadu_pd(ap + 4);
    ap += 8;
    __m256d b;
    b = _mm256_broadcast_sd(bp + 0);
    c00 = _mm256_fmadd_pd(a0, b, c00);
    c01 = _mm256_fmadd_pd(a1, b, c01);
    b = _mm256_broadcast_sd(bp + 1);
    c10 = _mm256_fmadd_pd(a0, b, c10);
    c11 = _mm256_fmadd_pd(a1, b, c11);
    b = _mm256_broadcast_sd(bp + 2);
    c20 = _mm256_fmadd_pd(a0, b, c20);
    c21 = _mm256_fmadd_pd(a1, b, c21);
    b = _mm256_broadcast_sd(bp + 3);
    c30 = _mm256_fmadd_pd(a0, b, c30);
    c31 = _mm256_fmadd_pd(a1, b, c31);
    b = _mm256_broadcast_sd(bp + 4);
    c40 = _mm256_fmadd_pd(a0, b, c40);
    c41 = _mm256_fmadd_pd(a1, b, c41);
    b = _mm256_broadcast_sd(bp + 5);
    c50 = _mm256_fmadd_pd(a0, b, c50);
    c51 = _mm256_fmadd_pd(a1, b, c51);
    bp += 6;
  }
  _mm256_storeu_pd(acc + 0, c00);
  _mm256_storeu_pd(acc + 4, c01);
  _mm256_storeu_pd(acc + 8, c10);
  _mm256_storeu_pd(acc + 12, c11);
  _mm256_storeu_pd(acc + 16, c20);
  _mm256_storeu_pd(acc + 20, c21);
  _mm256_storeu_pd(acc + 24, c30);
  _mm256_storeu_pd(acc + 28, c31);
  _mm256_storeu_pd(acc + 32, c40);
  _mm256_storeu_pd(acc + 36, c41);
  _mm256_storeu_pd(acc + 40, c50);
  _mm256_storeu_pd(acc + 44, c51);
}

// 16×6 float microkernel, same register shape at 8 lanes.
template <>
inline void micro_kernel<float>(index_t kc, const float* __restrict__ ap,
                                const float* __restrict__ bp,
                                float* __restrict__ acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (index_t k = 0; k < kc; ++k) {
    const __m256 a0 = _mm256_loadu_ps(ap);
    const __m256 a1 = _mm256_loadu_ps(ap + 8);
    ap += 16;
    __m256 b;
    b = _mm256_broadcast_ss(bp + 0);
    c00 = _mm256_fmadd_ps(a0, b, c00);
    c01 = _mm256_fmadd_ps(a1, b, c01);
    b = _mm256_broadcast_ss(bp + 1);
    c10 = _mm256_fmadd_ps(a0, b, c10);
    c11 = _mm256_fmadd_ps(a1, b, c11);
    b = _mm256_broadcast_ss(bp + 2);
    c20 = _mm256_fmadd_ps(a0, b, c20);
    c21 = _mm256_fmadd_ps(a1, b, c21);
    b = _mm256_broadcast_ss(bp + 3);
    c30 = _mm256_fmadd_ps(a0, b, c30);
    c31 = _mm256_fmadd_ps(a1, b, c31);
    b = _mm256_broadcast_ss(bp + 4);
    c40 = _mm256_fmadd_ps(a0, b, c40);
    c41 = _mm256_fmadd_ps(a1, b, c41);
    b = _mm256_broadcast_ss(bp + 5);
    c50 = _mm256_fmadd_ps(a0, b, c50);
    c51 = _mm256_fmadd_ps(a1, b, c51);
    bp += 6;
  }
  _mm256_storeu_ps(acc + 0, c00);
  _mm256_storeu_ps(acc + 8, c01);
  _mm256_storeu_ps(acc + 16, c10);
  _mm256_storeu_ps(acc + 24, c11);
  _mm256_storeu_ps(acc + 32, c20);
  _mm256_storeu_ps(acc + 40, c21);
  _mm256_storeu_ps(acc + 48, c30);
  _mm256_storeu_ps(acc + 56, c31);
  _mm256_storeu_ps(acc + 64, c40);
  _mm256_storeu_ps(acc + 72, c41);
  _mm256_storeu_ps(acc + 80, c50);
  _mm256_storeu_ps(acc + 88, c51);
}

#endif  // RANDLA_SIMD_AVX2

template <class Real>
void scale_matrix(MatrixView<Real> c, Real beta) {
  if (beta == Real(1)) return;
  for (index_t j = 0; j < c.cols(); ++j) {
    Real* p = c.col_ptr(j);
    if (beta == Real(0)) {
      for (index_t i = 0; i < c.rows(); ++i) p[i] = Real(0);
    } else {
      for (index_t i = 0; i < c.rows(); ++i) p[i] *= beta;
    }
  }
}

template <class Real>
void gemm_serial(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
                 ConstMatrixView<Real> b, Real beta, MatrixView<Real> c) {
  constexpr index_t MR = Tile<Real>::MR;
  constexpr index_t NR = Tile<Real>::NR;
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (opa == Op::NoTrans) ? a.cols() : a.rows();
  assert(((opa == Op::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((opb == Op::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((opb == Op::NoTrans) ? b.cols() : b.rows()) == n);

  if (m == 0 || n == 0) return;
  if (alpha == Real(0) || k == 0) {
    scale_matrix(c, beta);
    return;
  }

  thread_local std::vector<Real> a_pack;
  thread_local std::vector<Real> b_pack;
  a_pack.resize(static_cast<std::size_t>(kMC + MR) * kKC);
  b_pack.resize(static_cast<std::size_t>(kNC + NR) * kKC);

  Real acc[MR * NR];

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      // The beta pass is fused into the first kc-block's write-out
      // (beta·C + acc in one touch of C); later kc blocks accumulate.
      const bool first = (pc == 0);
      pack_b(b, opb, pc, jc, kc, nc, b_pack.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_a(a, opa, ic, pc, mc, kc, alpha, a_pack.data());
        // Macro-kernel: sweep MR×NR tiles of the mc×nc block of C.
        for (index_t q = 0; q < nc; q += NR) {
          const index_t qc = std::min(NR, nc - q);
          const Real* bp = b_pack.data() + (q / NR) * kc * NR;
          for (index_t p = 0; p < mc; p += MR) {
            const index_t pr = std::min(MR, mc - p);
            const Real* ap = a_pack.data() + (p / MR) * kc * MR;
            micro_kernel(kc, ap, bp, acc);
            for (index_t cc = 0; cc < qc; ++cc) {
              Real* ccol = c.col_ptr(jc + q + cc) + ic + p;
              const Real* av = acc + cc * MR;
              if (!first || beta == Real(1)) {
                for (index_t r = 0; r < pr; ++r) ccol[r] += av[r];
              } else if (beta == Real(0)) {
                for (index_t r = 0; r < pr; ++r) ccol[r] = av[r];
              } else {
                for (index_t r = 0; r < pr; ++r)
                  ccol[r] = beta * ccol[r] + av[r];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

const char* kernel_arch() {
#if RANDLA_SIMD_AVX2
  return "avx2-fma (dgemm 8x6, sgemm 16x6)";
#else
  return "scalar (gemm 4x8)";
#endif
}

GemmGrid gemm_parallel_grid(index_t m, index_t n, index_t k, index_t threads) {
  GemmGrid g;
  if (threads <= 1 || m <= 0 || n <= 0 || k <= 0) return g;
  if (2.0 * double(m) * double(n) * double(k) < kMinParallelFlops) return g;
  const index_t max_r = std::max<index_t>(1, m / kRowGrain);
  const index_t max_c = std::max<index_t>(1, n / kColGrain);
  // Prefer column tiles (each worker packs a disjoint B panel), then
  // take rows until the grid covers the thread count. The k dimension
  // is never split, so results are bitwise independent of the grid.
  g.col_tiles = std::min(max_c, threads);
  g.row_tiles = std::min(max_r, (threads + g.col_tiles - 1) / g.col_tiles);
  return g;
}

template <class Real>
void gemm(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
          ConstMatrixView<Real> b, Real beta, MatrixView<Real> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (opa == Op::NoTrans) ? a.cols() : a.rows();
  la_prof::KernelScope prof("gemm", 2.0 * double(m) * double(n) * double(k),
                            std::min({m, n, k}), std::max({m, n, k}));
  // 2D (row×column) tiling over independent blocks of C, sized by
  // gemm_parallel_grid so the library's dominant sampling shapes —
  // short-wide Ω·A (splits columns) and tall-skinny A·P (splits rows)
  // — both engage the worker pool. thread_local packing buffers make
  // gemm_serial concurrency-safe.
  const GemmGrid grid = gemm_parallel_grid(m, n, k, blas_num_threads());
  const index_t tiles = grid.row_tiles * grid.col_tiles;
  if (tiles > 1) {
    const index_t rstep = (m + grid.row_tiles - 1) / grid.row_tiles;
    const index_t cstep = (n + grid.col_tiles - 1) / grid.col_tiles;
    parallel_ranges(tiles, 1, [&](index_t t0, index_t t1) {
      for (index_t t = t0; t < t1; ++t) {
        const index_t i0 = (t / grid.col_tiles) * rstep;
        const index_t j0 = (t % grid.col_tiles) * cstep;
        const index_t i1 = std::min(m, i0 + rstep);
        const index_t j1 = std::min(n, j0 + cstep);
        if (i0 >= i1 || j0 >= j1) continue;
        auto a_slice = (opa == Op::NoTrans)
                           ? a.block(i0, 0, i1 - i0, a.cols())
                           : a.block(0, i0, a.rows(), i1 - i0);
        auto b_slice = (opb == Op::NoTrans)
                           ? b.block(0, j0, b.rows(), j1 - j0)
                           : b.block(j0, 0, j1 - j0, b.cols());
        gemm_serial(opa, opb, alpha, a_slice, b_slice, beta,
                    c.block(i0, j0, i1 - i0, j1 - j0));
      }
    });
    return;
  }
  gemm_serial(opa, opb, alpha, a, b, beta, c);
}

namespace {

// One (problem, C-tile) unit of a batched walk. Tiles of a problem use
// the exact gemm_parallel_grid slicing `gemm` would use, so a batched
// run is bitwise identical to looping `gemm` over the problems.
struct BatchTile {
  index_t prob;
  index_t i0, i1, j0, j1;
};

template <class Real>
void run_batch_tile(const GemmProblem<Real>& p, const BatchTile& t) {
  auto a_slice = (p.opa == Op::NoTrans)
                     ? p.a.block(t.i0, 0, t.i1 - t.i0, p.a.cols())
                     : p.a.block(0, t.i0, p.a.rows(), t.i1 - t.i0);
  auto b_slice = (p.opb == Op::NoTrans)
                     ? p.b.block(0, t.j0, p.b.rows(), t.j1 - t.j0)
                     : p.b.block(t.j0, 0, t.j1 - t.j0, p.b.cols());
  MatrixView<Real> c = p.c;
  gemm_serial(p.opa, p.opb, p.alpha, a_slice, b_slice, p.beta,
              c.block(t.i0, t.j0, t.i1 - t.i0, t.j1 - t.j0));
}

}  // namespace

template <class Real>
void gemm_batched(const GemmProblem<Real>* problems, index_t count) {
  double total_flops = 0;
  for (index_t pi = 0; pi < count; ++pi) {
    const GemmProblem<Real>& p = problems[pi];
    const index_t k =
        (p.opa == Op::NoTrans) ? p.a.cols() : p.a.rows();
    total_flops +=
        2.0 * double(p.c.rows()) * double(p.c.cols()) * double(k);
  }
  la_prof::KernelScope prof("gemm_batched", total_flops);

  // Flatten every problem's tile grid into one work list. Large
  // problems contribute their usual row×col grid; small problems (below
  // the single-GEMM fan-out threshold) contribute one whole-C tile each
  // — which is exactly how the batch wins: N sub-threshold GEMMs become
  // N items distributed over one parallel sweep instead of N serial
  // calls. thread_local pack buffers in gemm_serial are reused across
  // every item a worker executes (shared pack buffers per thread).
  const index_t threads = blas_num_threads();
  std::vector<BatchTile> items;
  items.reserve(static_cast<std::size_t>(count));
  for (index_t pi = 0; pi < count; ++pi) {
    const GemmProblem<Real>& p = problems[pi];
    const index_t m = p.c.rows();
    const index_t n = p.c.cols();
    const index_t k =
        (p.opa == Op::NoTrans) ? p.a.cols() : p.a.rows();
    if (m == 0 || n == 0) continue;
    const GemmGrid grid = gemm_parallel_grid(m, n, k, threads);
    const index_t rstep = (m + grid.row_tiles - 1) / grid.row_tiles;
    const index_t cstep = (n + grid.col_tiles - 1) / grid.col_tiles;
    for (index_t t = 0; t < grid.row_tiles * grid.col_tiles; ++t) {
      const index_t i0 = (t / grid.col_tiles) * rstep;
      const index_t j0 = (t % grid.col_tiles) * cstep;
      const index_t i1 = std::min(m, i0 + rstep);
      const index_t j1 = std::min(n, j0 + cstep);
      if (i0 >= i1 || j0 >= j1) continue;
      items.push_back(BatchTile{pi, i0, i1, j0, j1});
    }
  }

  const index_t total = static_cast<index_t>(items.size());
  if (total == 0) return;
  if (threads <= 1 || total == 1) {
    for (const BatchTile& t : items)
      run_batch_tile(problems[t.prob], t);
    return;
  }
  parallel_ranges(total, 1, [&](index_t t0, index_t t1) {
    for (index_t t = t0; t < t1; ++t) {
      const BatchTile& bt = items[static_cast<std::size_t>(t)];
      run_batch_tile(problems[bt.prob], bt);
    }
  });
}

template <class Real>
void syrk(Uplo uplo, Op op, Real alpha, ConstMatrixView<Real> a, Real beta,
          MatrixView<Real> c) {
  const index_t n = c.rows();
  assert(c.cols() == n);
  const index_t k = (op == Op::NoTrans) ? a.cols() : a.rows();
  assert(((op == Op::NoTrans) ? a.rows() : a.cols()) == n);
  la_prof::KernelScope prof("syrk", double(n) * double(n) * double(k));

  // Blocked over the triangle: diagonal blocks are computed densely with
  // gemm into a scratch tile (cheap relative to the off-diagonal volume),
  // off-diagonal blocks call gemm directly. Every (i, j) block of C is
  // written exactly once, so the blocks parallelize as independent
  // tasks across the worker pool (the CholQR Gram matrix is the hot
  // caller here).
  constexpr index_t nb = 96;
  auto do_block = [&](index_t i, index_t j) {
    const index_t ib = std::min(nb, n - i);
    auto ai = (op == Op::NoTrans) ? a.rows_range(i, i + ib)
                                  : a.cols_range(i, i + ib);
    if (i == j) {
      thread_local Matrix<Real> diag_tile;
      diag_tile.resize(ib, ib);
      gemm(op, transpose(op), alpha, ai, ai, Real(0), diag_tile.view());
      auto cii = c.block(i, i, ib, ib);
      for (index_t jj = 0; jj < ib; ++jj) {
        const index_t lo = (uplo == Uplo::Upper) ? 0 : jj;
        const index_t hi = (uplo == Uplo::Upper) ? jj + 1 : ib;
        for (index_t ii = lo; ii < hi; ++ii) {
          const Real prev = beta == Real(0) ? Real(0) : beta * cii(ii, jj);
          cii(ii, jj) = prev + diag_tile(ii, jj);
        }
      }
      return;
    }
    const index_t jb = std::min(nb, n - j);
    auto aj = (op == Op::NoTrans) ? a.rows_range(j, j + jb)
                                  : a.cols_range(j, j + jb);
    if (uplo == Uplo::Upper) {
      gemm(op, transpose(op), alpha, ai, aj, beta, c.block(i, j, ib, jb));
    } else {
      gemm(op, transpose(op), alpha, aj, ai, beta, c.block(j, i, jb, ib));
    }
  };

  std::vector<std::pair<index_t, index_t>> blocks;
  for (index_t i = 0; i < n; i += nb)
    for (index_t j = i; j < n; j += nb) blocks.emplace_back(i, j);

  const double work = double(n) * double(n) * double(k);
  if (blas_num_threads() > 1 && blocks.size() > 1 &&
      work >= kMinParallelFlops) {
    parallel_ranges(static_cast<index_t>(blocks.size()), 1,
                    [&](index_t b0, index_t b1) {
                      for (index_t t = b0; t < b1; ++t)
                        do_block(blocks[static_cast<std::size_t>(t)].first,
                                 blocks[static_cast<std::size_t>(t)].second);
                    });
    return;
  }
  for (const auto& [i, j] : blocks) do_block(i, j);
}

template <class Real>
void symmetrize(Uplo stored, MatrixView<Real> c) {
  const index_t n = c.rows();
  assert(c.cols() == n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) {
      if (stored == Uplo::Upper)
        c(j, i) = c(i, j);
      else
        c(i, j) = c(j, i);
    }
  }
}

namespace {

template <class Real>
void trsm_serial(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
                 ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();

  if (alpha != Real(1)) scale_matrix(b, alpha);
  if (m == 0 || n == 0) return;

  constexpr index_t nb = 64;
  const index_t dim = t.rows();

  // Effective orientation: is op(T) lower-triangular?
  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  if (side == Side::Left) {
    // Solve op(T)·X = B, blocked forward (eff_lower) or backward.
    if (eff_lower) {
      for (index_t i = 0; i < dim; i += nb) {
        const index_t ib = std::min(nb, dim - i);
        // Update B_i -= op(T)_{i,0:i} · X_{0:i}.
        if (i > 0) {
          auto tio = (op == Op::NoTrans) ? t.block(i, 0, ib, i)
                                         : t.block(0, i, i, ib);
          gemm(op, Op::NoTrans, Real(-1), tio,
               ConstMatrixView<Real>(b.block(0, 0, i, n)), Real(1),
               b.block(i, 0, ib, n));
        }
        // Unblocked solve on the diagonal block, column by column of B.
        auto tii = t.block(i, i, ib, ib);
        for (index_t j = 0; j < n; ++j)
          trsv(uplo, op, diag, tii, b.col_ptr(j) + i, index_t{1});
      }
    } else {
      for (index_t i = ((dim - 1) / nb) * nb; i >= 0; i -= nb) {
        const index_t ib = std::min(nb, dim - i);
        const index_t rest = dim - (i + ib);
        if (rest > 0) {
          auto tir = (op == Op::NoTrans) ? t.block(i, i + ib, ib, rest)
                                         : t.block(i + ib, i, rest, ib);
          gemm(op, Op::NoTrans, Real(-1), tir,
               ConstMatrixView<Real>(b.block(i + ib, 0, rest, n)), Real(1),
               b.block(i, 0, ib, n));
        }
        auto tii = t.block(i, i, ib, ib);
        for (index_t j = 0; j < n; ++j)
          trsv(uplo, op, diag, tii, b.col_ptr(j) + i, index_t{1});
        if (i == 0) break;
      }
    }
  } else {
    // Solve X·op(T) = B  ⇔  op(T)ᵀ·Xᵀ = Bᵀ. op(T)ᵀ is lower iff op(T) is
    // upper, so the sweep direction flips relative to the Left case.
    if (!eff_lower) {
      // op(T) upper: forward over columns of B.
      for (index_t j = 0; j < dim; j += nb) {
        const index_t jb = std::min(nb, dim - j);
        if (j > 0) {
          auto toj = (op == Op::NoTrans) ? t.block(0, j, j, jb)
                                         : t.block(j, 0, jb, j);
          gemm(Op::NoTrans, op, Real(-1),
               ConstMatrixView<Real>(b.block(0, 0, m, j)), toj, Real(1),
               b.block(0, j, m, jb));
        }
        auto tjj = t.block(j, j, jb, jb);
        // Row-wise trsv on Bᵀ: solve op(T_jj)ᵀ x = row for each row of B.
        for (index_t i = 0; i < m; ++i)
          trsv(uplo, transpose(op), diag, tjj, b.data() + i + j * b.ld(),
               b.ld());
      }
    } else {
      for (index_t j = ((dim - 1) / nb) * nb; j >= 0; j -= nb) {
        const index_t jb = std::min(nb, dim - j);
        const index_t rest = dim - (j + jb);
        if (rest > 0) {
          auto tjr = (op == Op::NoTrans) ? t.block(j + jb, j, rest, jb)
                                         : t.block(j, j + jb, jb, rest);
          gemm(Op::NoTrans, op, Real(-1),
               ConstMatrixView<Real>(b.block(0, j + jb, m, rest)), tjr, Real(1),
               b.block(0, j, m, jb));
        }
        auto tjj = t.block(j, j, jb, jb);
        for (index_t i = 0; i < m; ++i)
          trsv(uplo, transpose(op), diag, tjj, b.data() + i + j * b.ld(),
               b.ld());
        if (j == 0) break;
      }
    }
  }
}

template <class Real>
void trmm_serial(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
                 ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  if (m == 0 || n == 0) return;

  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  // In-place triangular multiply with axpy/dot inner kernels; the
  // triangular factors in this library are ℓ×ℓ (small), so the O(dim²·n)
  // two-level loop is adequate once the inner kernels are vectorized
  // and the outer independent dimension is split across the pool.
  if (side == Side::Left) {
    if (!eff_lower) {
      // op(T) upper: compute rows top-down (row i uses rows ≥ i).
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        for (index_t i = 0; i < m; ++i) {
          Real s = diag == Diag::Unit ? bj[i] : t(i, i) * bj[i];
          if (op == Op::Trans) {
            // t(kk, i) down column i is stride-1: vectorized dot.
            s += dot(m - i - 1, t.col_ptr(i) + i + 1, index_t{1}, bj + i + 1,
                     index_t{1});
          } else {
            for (index_t kk = i + 1; kk < m; ++kk) s += t(i, kk) * bj[kk];
          }
          bj[i] = alpha * s;
        }
      }
    } else {
      // op(T) lower: compute rows bottom-up (row i uses rows ≤ i).
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        for (index_t i = m - 1; i >= 0; --i) {
          Real s = diag == Diag::Unit ? bj[i] : t(i, i) * bj[i];
          if (op == Op::Trans) {
            s += dot(i, t.col_ptr(i), index_t{1}, bj, index_t{1});
          } else {
            for (index_t kk = 0; kk < i; ++kk) s += t(i, kk) * bj[kk];
          }
          bj[i] = alpha * s;
        }
      }
    }
  } else {
    // B ← α·B·op(T).
    if (!eff_lower) {
      // op(T) upper: column j of the result uses columns ≤ j; go right-to-left.
      for (index_t j = n - 1; j >= 0; --j) {
        Real* bj = b.col_ptr(j);
        const Real tjj = diag == Diag::Unit ? Real(1) : t(j, j);
        scal(m, alpha * tjj, bj, index_t{1});
        for (index_t kk = 0; kk < j; ++kk) {
          const Real tkj = op == Op::NoTrans ? t(kk, j) : t(j, kk);
          if (tkj != Real(0))
            axpy(m, alpha * tkj, b.col_ptr(kk), index_t{1}, bj, index_t{1});
        }
        if (j == 0) break;
      }
    } else {
      // op(T) lower: column j uses columns ≥ j; go left-to-right.
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        const Real tjj = diag == Diag::Unit ? Real(1) : t(j, j);
        scal(m, alpha * tjj, bj, index_t{1});
        for (index_t kk = j + 1; kk < n; ++kk) {
          const Real tkj = op == Op::NoTrans ? t(kk, j) : t(j, kk);
          if (tkj != Real(0))
            axpy(m, alpha * tkj, b.col_ptr(kk), index_t{1}, bj, index_t{1});
        }
      }
    }
  }
}

}  // namespace

template <class Real>
void trsm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  assert(t.rows() == t.cols());
  assert(t.rows() == (side == Side::Left ? m : n));
  const index_t dim = t.rows();

  // Left solves are independent per column of B, right solves per row:
  // split the independent dimension across the pool (the CholQR
  // A·R⁻¹ step is a Right solve over all m rows of the sample matrix).
  const double work = double(dim) * double(dim) * (side == Side::Left ? n : m);
  la_prof::KernelScope prof("trsm", work);
  if (blas_num_threads() > 1 && work >= kMinParallelFlops) {
    if (side == Side::Left && n > 1) {
      parallel_ranges(n, 8, [&](index_t j0, index_t j1) {
        trsm_serial(side, uplo, op, diag, alpha, t,
                    b.block(0, j0, m, j1 - j0));
      });
      return;
    }
    if (side == Side::Right && m > 1) {
      parallel_ranges(m, 8, [&](index_t i0, index_t i1) {
        trsm_serial(side, uplo, op, diag, alpha, t,
                    b.block(i0, 0, i1 - i0, n));
      });
      return;
    }
  }
  trsm_serial(side, uplo, op, diag, alpha, t, b);
}

template <class Real>
void trmm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  assert(t.rows() == t.cols());
  assert(t.rows() == (side == Side::Left ? m : n));
  if (m == 0 || n == 0) return;
  const index_t dim = t.rows();

  // Left multiplies are independent per column of B; right multiplies
  // per row (row i of B·op(T) only reads row i of B), so a row-sliced
  // view runs the same in-place algorithm correctly.
  const double work = double(dim) * double(dim) * (side == Side::Left ? n : m);
  la_prof::KernelScope prof("trmm", work);
  if (blas_num_threads() > 1 && work >= kMinParallelFlops) {
    if (side == Side::Left && n > 1) {
      parallel_ranges(n, 8, [&](index_t j0, index_t j1) {
        trmm_serial(side, uplo, op, diag, alpha, t,
                    b.block(0, j0, m, j1 - j0));
      });
      return;
    }
    if (side == Side::Right && m > 1) {
      parallel_ranges(m, 8, [&](index_t i0, index_t i1) {
        trmm_serial(side, uplo, op, diag, alpha, t,
                    b.block(i0, 0, i1 - i0, n));
      });
      return;
    }
  }
  trmm_serial(side, uplo, op, diag, alpha, t, b);
}

#define RANDLA_INSTANTIATE_BLAS3(Real)                                         \
  template void gemm<Real>(Op, Op, Real, ConstMatrixView<Real>,                \
                           ConstMatrixView<Real>, Real, MatrixView<Real>);     \
  template void gemm_batched<Real>(const GemmProblem<Real>*, index_t);         \
  template void syrk<Real>(Uplo, Op, Real, ConstMatrixView<Real>, Real,        \
                           MatrixView<Real>);                                  \
  template void symmetrize<Real>(Uplo, MatrixView<Real>);                      \
  template void trsm<Real>(Side, Uplo, Op, Diag, Real, ConstMatrixView<Real>,  \
                           MatrixView<Real>);                                  \
  template void trmm<Real>(Side, Uplo, Op, Diag, Real, ConstMatrixView<Real>,  \
                           MatrixView<Real>);

RANDLA_INSTANTIATE_BLAS3(float)
RANDLA_INSTANTIATE_BLAS3(double)

#undef RANDLA_INSTANTIATE_BLAS3

}  // namespace randla::blas
