#include "la/blas3.hpp"

#include <algorithm>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/parallel.hpp"

namespace randla::blas {

namespace {

// Cache-blocking parameters (GotoBLAS naming): a KC×NC panel of B lives
// in L2/L3, an MC×KC panel of A in L1/L2, and the microkernel keeps an
// MR×NR tile of C in registers.
constexpr index_t kMC = 128;
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;
constexpr index_t kMR = 4;
constexpr index_t kNR = 8;

// Element accessor that folds the transpose flag into indexing.
template <class Real>
inline Real at(ConstMatrixView<Real> m, Op op, index_t i, index_t j) {
  return op == Op::NoTrans ? m(i, j) : m(j, i);
}

// Pack an mc×kc block of op(A) (top-left at (i0, k0) of op(A)) into
// row-panels of height kMR: panel p holds rows [p*MR, p*MR+MR), stored as
// kc groups of MR contiguous elements.
template <class Real>
void pack_a(ConstMatrixView<Real> a, Op opa, index_t i0, index_t k0, index_t mc,
            index_t kc, Real* dst) {
  for (index_t p = 0; p < mc; p += kMR) {
    const index_t pr = std::min(kMR, mc - p);
    for (index_t k = 0; k < kc; ++k) {
      for (index_t r = 0; r < pr; ++r) *dst++ = at(a, opa, i0 + p + r, k0 + k);
      for (index_t r = pr; r < kMR; ++r) *dst++ = Real(0);
    }
  }
}

// Pack a kc×nc block of op(B) (top-left at (k0, j0) of op(B)) into
// column-panels of width kNR: panel q holds columns [q*NR, q*NR+NR),
// stored as kc groups of NR contiguous elements.
template <class Real>
void pack_b(ConstMatrixView<Real> b, Op opb, index_t k0, index_t j0, index_t kc,
            index_t nc, Real* dst) {
  for (index_t q = 0; q < nc; q += kNR) {
    const index_t qc = std::min(kNR, nc - q);
    for (index_t k = 0; k < kc; ++k) {
      for (index_t c = 0; c < qc; ++c) *dst++ = at(b, opb, k0 + k, j0 + q + c);
      for (index_t c = qc; c < kNR; ++c) *dst++ = Real(0);
    }
  }
}

// MR×NR register-tile microkernel: acc += Ap·Bp over kc terms, where Ap is
// an MR-row packed panel and Bp an NR-column packed panel.
template <class Real>
inline void micro_kernel(index_t kc, const Real* __restrict__ ap,
                         const Real* __restrict__ bp, Real* __restrict__ acc) {
  Real c[kMR * kNR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const Real* a = ap + k * kMR;
    const Real* b = bp + k * kNR;
    for (index_t r = 0; r < kMR; ++r) {
      const Real ar = a[r];
      Real* crow = c + r * kNR;
      for (index_t cc = 0; cc < kNR; ++cc) crow[cc] += ar * b[cc];
    }
  }
  for (index_t i = 0; i < kMR * kNR; ++i) acc[i] = c[i];
}

template <class Real>
void scale_matrix(MatrixView<Real> c, Real beta) {
  if (beta == Real(1)) return;
  for (index_t j = 0; j < c.cols(); ++j) {
    Real* p = c.col_ptr(j);
    if (beta == Real(0)) {
      for (index_t i = 0; i < c.rows(); ++i) p[i] = Real(0);
    } else {
      for (index_t i = 0; i < c.rows(); ++i) p[i] *= beta;
    }
  }
}

}  // namespace

namespace {

template <class Real>
void gemm_serial(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
                 ConstMatrixView<Real> b, Real beta, MatrixView<Real> c);

}  // namespace

template <class Real>
void gemm(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
          ConstMatrixView<Real> b, Real beta, MatrixView<Real> c) {
  const index_t n = c.cols();
  // Column ranges of C are independent: split them across the BLAS
  // worker threads (the shared-memory CPU half of the paper's platform).
  // thread_local packing buffers make gemm_serial concurrency-safe.
  if (blas_num_threads() > 1 && n >= 2 * kNC) {
    parallel_ranges(n, kNC, [&](index_t j0, index_t j1) {
      auto b_slice = (opb == Op::NoTrans) ? b.block(0, j0, b.rows(), j1 - j0)
                                          : b.block(j0, 0, j1 - j0, b.cols());
      gemm_serial(opa, opb, alpha, a, b_slice, beta,
                  c.block(0, j0, c.rows(), j1 - j0));
    });
    return;
  }
  gemm_serial(opa, opb, alpha, a, b, beta, c);
}

namespace {

template <class Real>
void gemm_serial(Op opa, Op opb, Real alpha, ConstMatrixView<Real> a,
                 ConstMatrixView<Real> b, Real beta, MatrixView<Real> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (opa == Op::NoTrans) ? a.cols() : a.rows();
  assert(((opa == Op::NoTrans) ? a.rows() : a.cols()) == m);
  assert(((opb == Op::NoTrans) ? b.rows() : b.cols()) == k);
  assert(((opb == Op::NoTrans) ? b.cols() : b.rows()) == n);

  scale_matrix(c, beta);
  if (alpha == Real(0) || m == 0 || n == 0 || k == 0) return;

  thread_local std::vector<Real> a_pack;
  thread_local std::vector<Real> b_pack;
  a_pack.resize(static_cast<std::size_t>(kMC) * kKC + kMR * kKC);
  b_pack.resize(static_cast<std::size_t>(kKC) * kNC + kNR * kKC);

  Real acc[kMR * kNR];

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      pack_b(b, opb, pc, jc, kc, nc, b_pack.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_a(a, opa, ic, pc, mc, kc, a_pack.data());
        // Macro-kernel: sweep MR×NR tiles of the mc×nc block of C.
        for (index_t q = 0; q < nc; q += kNR) {
          const index_t qc = std::min(kNR, nc - q);
          const Real* bp = b_pack.data() + (q / kNR) * kc * kNR;
          for (index_t p = 0; p < mc; p += kMR) {
            const index_t pr = std::min(kMR, mc - p);
            const Real* ap = a_pack.data() + (p / kMR) * kc * kMR;
            micro_kernel(kc, ap, bp, acc);
            for (index_t cc = 0; cc < qc; ++cc) {
              Real* ccol = c.col_ptr(jc + q + cc) + ic + p;
              for (index_t r = 0; r < pr; ++r) ccol[r] += alpha * acc[r * kNR + cc];
            }
          }
        }
      }
    }
  }
}

}  // namespace

template <class Real>
void syrk(Uplo uplo, Op op, Real alpha, ConstMatrixView<Real> a, Real beta,
          MatrixView<Real> c) {
  const index_t n = c.rows();
  assert(c.cols() == n);
  const index_t k = (op == Op::NoTrans) ? a.cols() : a.rows();
  assert(((op == Op::NoTrans) ? a.rows() : a.cols()) == n);
  (void)k;

  // Blocked over the triangle: diagonal blocks are computed densely with
  // gemm into a scratch tile (cheap relative to the off-diagonal volume),
  // off-diagonal blocks call gemm directly.
  constexpr index_t nb = 96;
  thread_local Matrix<Real> diag_tile;
  for (index_t i = 0; i < n; i += nb) {
    const index_t ib = std::min(nb, n - i);
    // Diagonal block.
    diag_tile.resize(ib, ib);
    auto ai = (op == Op::NoTrans) ? a.rows_range(i, i + ib)
                                  : a.cols_range(i, i + ib);
    gemm(op, transpose(op), alpha, ai, ai, Real(0), diag_tile.view());
    auto cii = c.block(i, i, ib, ib);
    for (index_t jj = 0; jj < ib; ++jj) {
      const index_t lo = (uplo == Uplo::Upper) ? 0 : jj;
      const index_t hi = (uplo == Uplo::Upper) ? jj + 1 : ib;
      for (index_t ii = lo; ii < hi; ++ii)
        cii(ii, jj) = beta * (beta == Real(0) ? Real(0) : cii(ii, jj)) +
                      diag_tile(ii, jj);
    }
    // Off-diagonal blocks of this block-row/column.
    for (index_t j = i + ib; j < n; j += nb) {
      const index_t jb = std::min(nb, n - j);
      auto aj = (op == Op::NoTrans) ? a.rows_range(j, j + jb)
                                    : a.cols_range(j, j + jb);
      if (uplo == Uplo::Upper) {
        gemm(op, transpose(op), alpha, ai, aj, beta, c.block(i, j, ib, jb));
      } else {
        gemm(op, transpose(op), alpha, aj, ai, beta, c.block(j, i, jb, ib));
      }
    }
  }
}

template <class Real>
void symmetrize(Uplo stored, MatrixView<Real> c) {
  const index_t n = c.rows();
  assert(c.cols() == n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) {
      if (stored == Uplo::Upper)
        c(j, i) = c(i, j);
      else
        c(i, j) = c(j, i);
    }
  }
}

template <class Real>
void trsm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  assert(t.rows() == t.cols());
  assert(t.rows() == (side == Side::Left ? m : n));

  if (alpha != Real(1)) scale_matrix(b, alpha);
  if (m == 0 || n == 0) return;

  constexpr index_t nb = 64;
  const index_t dim = t.rows();

  // Effective orientation: is op(T) lower-triangular?
  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  if (side == Side::Left) {
    // Solve op(T)·X = B, blocked forward (eff_lower) or backward.
    if (eff_lower) {
      for (index_t i = 0; i < dim; i += nb) {
        const index_t ib = std::min(nb, dim - i);
        // Update B_i -= op(T)_{i,0:i} · X_{0:i}.
        if (i > 0) {
          auto tio = (op == Op::NoTrans) ? t.block(i, 0, ib, i)
                                         : t.block(0, i, i, ib);
          gemm(op, Op::NoTrans, Real(-1), tio,
               ConstMatrixView<Real>(b.block(0, 0, i, n)), Real(1),
               b.block(i, 0, ib, n));
        }
        // Unblocked solve on the diagonal block, column by column of B.
        auto tii = t.block(i, i, ib, ib);
        for (index_t j = 0; j < n; ++j)
          trsv(uplo, op, diag, tii, b.col_ptr(j) + i, index_t{1});
      }
    } else {
      for (index_t i = ((dim - 1) / nb) * nb; i >= 0; i -= nb) {
        const index_t ib = std::min(nb, dim - i);
        const index_t rest = dim - (i + ib);
        if (rest > 0) {
          auto tir = (op == Op::NoTrans) ? t.block(i, i + ib, ib, rest)
                                         : t.block(i + ib, i, rest, ib);
          gemm(op, Op::NoTrans, Real(-1), tir,
               ConstMatrixView<Real>(b.block(i + ib, 0, rest, n)), Real(1),
               b.block(i, 0, ib, n));
        }
        auto tii = t.block(i, i, ib, ib);
        for (index_t j = 0; j < n; ++j)
          trsv(uplo, op, diag, tii, b.col_ptr(j) + i, index_t{1});
        if (i == 0) break;
      }
    }
  } else {
    // Solve X·op(T) = B  ⇔  op(T)ᵀ·Xᵀ = Bᵀ. op(T)ᵀ is lower iff op(T) is
    // upper, so the sweep direction flips relative to the Left case.
    if (!eff_lower) {
      // op(T) upper: forward over columns of B.
      for (index_t j = 0; j < dim; j += nb) {
        const index_t jb = std::min(nb, dim - j);
        if (j > 0) {
          auto toj = (op == Op::NoTrans) ? t.block(0, j, j, jb)
                                         : t.block(j, 0, jb, j);
          gemm(Op::NoTrans, op, Real(-1),
               ConstMatrixView<Real>(b.block(0, 0, m, j)), toj, Real(1),
               b.block(0, j, m, jb));
        }
        auto tjj = t.block(j, j, jb, jb);
        // Row-wise trsv on Bᵀ: solve op(T_jj)ᵀ x = row for each row of B.
        for (index_t i = 0; i < m; ++i)
          trsv(uplo, transpose(op), diag, tjj, b.data() + i + j * b.ld(),
               b.ld());
      }
    } else {
      for (index_t j = ((dim - 1) / nb) * nb; j >= 0; j -= nb) {
        const index_t jb = std::min(nb, dim - j);
        const index_t rest = dim - (j + jb);
        if (rest > 0) {
          auto tjr = (op == Op::NoTrans) ? t.block(j + jb, j, rest, jb)
                                         : t.block(j, j + jb, jb, rest);
          gemm(Op::NoTrans, op, Real(-1),
               ConstMatrixView<Real>(b.block(0, j + jb, m, rest)), tjr, Real(1),
               b.block(0, j, m, jb));
        }
        auto tjj = t.block(j, j, jb, jb);
        for (index_t i = 0; i < m; ++i)
          trsv(uplo, transpose(op), diag, tjj, b.data() + i + j * b.ld(),
               b.ld());
        if (j == 0) break;
      }
    }
  }
}

template <class Real>
void trmm(Side side, Uplo uplo, Op op, Diag diag, Real alpha,
          ConstMatrixView<Real> t, MatrixView<Real> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  assert(t.rows() == t.cols());
  assert(t.rows() == (side == Side::Left ? m : n));
  if (m == 0 || n == 0) return;

  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);

  // Unblocked in-place triangular multiply; the triangular factors in
  // this library are ℓ×ℓ (small), so an O(dim²·n) two-level loop with
  // axpy/dot inner kernels is adequate.
  if (side == Side::Left) {
    if (!eff_lower) {
      // op(T) upper: compute rows top-down (row i uses rows ≥ i).
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        for (index_t i = 0; i < m; ++i) {
          Real s = diag == Diag::Unit ? bj[i]
                                      : (op == Op::NoTrans ? t(i, i) : t(i, i)) * bj[i];
          for (index_t kk = i + 1; kk < m; ++kk)
            s += (op == Op::NoTrans ? t(i, kk) : t(kk, i)) * bj[kk];
          bj[i] = alpha * s;
        }
      }
    } else {
      // op(T) lower: compute rows bottom-up (row i uses rows ≤ i).
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        for (index_t i = m - 1; i >= 0; --i) {
          Real s = diag == Diag::Unit ? bj[i] : (op == Op::NoTrans ? t(i, i) : t(i, i)) * bj[i];
          for (index_t kk = 0; kk < i; ++kk)
            s += (op == Op::NoTrans ? t(i, kk) : t(kk, i)) * bj[kk];
          bj[i] = alpha * s;
        }
      }
    }
  } else {
    // B ← α·B·op(T).
    if (!eff_lower) {
      // op(T) upper: column j of the result uses columns ≤ j; go right-to-left.
      for (index_t j = n - 1; j >= 0; --j) {
        Real* bj = b.col_ptr(j);
        const Real tjj = diag == Diag::Unit ? Real(1) : t(j, j);
        scal(m, alpha * tjj, bj, index_t{1});
        for (index_t kk = 0; kk < j; ++kk) {
          const Real tkj = op == Op::NoTrans ? t(kk, j) : t(j, kk);
          if (tkj != Real(0)) axpy(m, alpha * tkj, b.col_ptr(kk), index_t{1}, bj, index_t{1});
        }
        if (j == 0) break;
      }
    } else {
      // op(T) lower: column j uses columns ≥ j; go left-to-right.
      for (index_t j = 0; j < n; ++j) {
        Real* bj = b.col_ptr(j);
        const Real tjj = diag == Diag::Unit ? Real(1) : t(j, j);
        scal(m, alpha * tjj, bj, index_t{1});
        for (index_t kk = j + 1; kk < n; ++kk) {
          const Real tkj = op == Op::NoTrans ? t(kk, j) : t(j, kk);
          if (tkj != Real(0)) axpy(m, alpha * tkj, b.col_ptr(kk), index_t{1}, bj, index_t{1});
        }
      }
    }
  }
}

#define RANDLA_INSTANTIATE_BLAS3(Real)                                         \
  template void gemm<Real>(Op, Op, Real, ConstMatrixView<Real>,                \
                           ConstMatrixView<Real>, Real, MatrixView<Real>);     \
  template void syrk<Real>(Uplo, Op, Real, ConstMatrixView<Real>, Real,        \
                           MatrixView<Real>);                                  \
  template void symmetrize<Real>(Uplo, MatrixView<Real>);                      \
  template void trsm<Real>(Side, Uplo, Op, Diag, Real, ConstMatrixView<Real>,  \
                           MatrixView<Real>);                                  \
  template void trmm<Real>(Side, Uplo, Op, Diag, Real, ConstMatrixView<Real>,  \
                           MatrixView<Real>);

RANDLA_INSTANTIATE_BLAS3(float)
RANDLA_INSTANTIATE_BLAS3(double)

#undef RANDLA_INSTANTIATE_BLAS3

}  // namespace randla::blas
