// cholesky.hpp — blocked Cholesky factorization (LAPACK potrf analogue).
//
// CholQR (the paper's orthogonalization of choice) forms the Gram matrix
// G = BBᵀ and Cholesky-factors it; this is the step that can fail for
// ill-conditioned B, which the library surfaces via the return code so
// callers can fall back to Householder QR (paper §4).
#pragma once

#include "la/matrix.hpp"

namespace randla::lapack {

/// In-place Cholesky of the `uplo` triangle of the symmetric positive
/// definite matrix A: A = RᵀR (Upper) or A = LLᵀ (Lower). The opposite
/// triangle is left untouched.
///
/// Returns 0 on success, or the 1-based index of the first non-positive
/// pivot (LAPACK info convention) if A is not numerically SPD.
template <class Real>
index_t potrf(Uplo uplo, MatrixView<Real> a);

}  // namespace randla::lapack
