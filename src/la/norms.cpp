#include "la/norms.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"

namespace randla {

template <class Real>
Real norm_fro(ConstMatrixView<Real> a) {
  Real scale = 0;
  Real ssq = 1;
  for (index_t j = 0; j < a.cols(); ++j) {
    const Real* c = a.col_ptr(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      const Real v = c[i];
      if (v == Real(0)) continue;
      const Real av = std::abs(v);
      if (scale < av) {
        const Real r = scale / av;
        ssq = Real(1) + ssq * r * r;
        scale = av;
      } else {
        const Real r = av / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

template <class Real>
Real norm_max(ConstMatrixView<Real> a) {
  Real best = 0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const Real* c = a.col_ptr(j);
    for (index_t i = 0; i < a.rows(); ++i) best = std::max(best, std::abs(c[i]));
  }
  return best;
}

template <class Real>
Real norm2_est(ConstMatrixView<Real> a, Real tol, index_t max_iter) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m == 0 || n == 0) return Real(0);

  // Power iteration on AᵀA with a deterministic quasi-random start so the
  // estimate is reproducible. x has length n.
  std::vector<Real> x(static_cast<std::size_t>(n));
  std::vector<Real> y(static_cast<std::size_t>(m));
  for (index_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        Real(0.5) + std::cos(Real(0.7) * Real(i + 1));
  Real nx = blas::nrm2(n, x.data(), index_t{1});
  blas::scal(n, Real(1) / nx, x.data(), index_t{1});

  Real sigma = 0;
  for (index_t it = 0; it < max_iter; ++it) {
    blas::gemv(Op::NoTrans, Real(1), a, x.data(), index_t{1}, Real(0), y.data(),
               index_t{1});
    const Real ny = blas::nrm2(m, y.data(), index_t{1});
    if (ny == Real(0)) return Real(0);
    blas::gemv(Op::Trans, Real(1), a, y.data(), index_t{1}, Real(0), x.data(),
               index_t{1});
    nx = blas::nrm2(n, x.data(), index_t{1});
    const Real new_sigma = nx / ny;  // ‖AᵀAx‖/‖Ax‖ → σ₁
    blas::scal(n, Real(1) / nx, x.data(), index_t{1});
    if (it > 0 && std::abs(new_sigma - sigma) <= tol * new_sigma) {
      return new_sigma;
    }
    sigma = new_sigma;
  }
  return sigma;
}

#define RANDLA_INSTANTIATE_NORMS(Real)                          \
  template Real norm_fro<Real>(ConstMatrixView<Real>);          \
  template Real norm_max<Real>(ConstMatrixView<Real>);          \
  template Real norm2_est<Real>(ConstMatrixView<Real>, Real, index_t);

RANDLA_INSTANTIATE_NORMS(float)
RANDLA_INSTANTIATE_NORMS(double)

#undef RANDLA_INSTANTIATE_NORMS

}  // namespace randla
