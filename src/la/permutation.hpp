// permutation.hpp — column permutations for pivoted factorizations.
//
// QRCP produces AP ≈ QR; we represent P as the column-index map
// perm[j] = original column placed at position j, matching LAPACK's
// jpvt (0-based here).
#pragma once

#include <numeric>
#include <vector>

#include "la/matrix.hpp"

namespace randla {

using Permutation = std::vector<index_t>;

inline Permutation identity_permutation(index_t n) {
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return p;
}

/// out = A·P, i.e. out column j is A column perm[j].
template <class Real>
void apply_column_permutation(ConstMatrixView<Real> a, const Permutation& perm,
                              MatrixView<Real> out) {
  assert(out.rows() == a.rows());
  assert(out.cols() == static_cast<index_t>(perm.size()));
  for (index_t j = 0; j < out.cols(); ++j)
    out.col(j).copy_from(a.col(perm[static_cast<std::size_t>(j)]));
}

/// Materialize A·P for the leading k columns only (the AP₁:k of Step 3).
template <class Real>
Matrix<Real> permuted_leading_columns(ConstMatrixView<Real> a,
                                      const Permutation& perm, index_t k) {
  Matrix<Real> out(a.rows(), k);
  for (index_t j = 0; j < k; ++j)
    out.view().col(j).copy_from(a.col(perm[static_cast<std::size_t>(j)]));
  return out;
}

/// Inverse permutation: inv[perm[j]] = j.
inline Permutation inverse_permutation(const Permutation& perm) {
  Permutation inv(perm.size());
  for (std::size_t j = 0; j < perm.size(); ++j)
    inv[static_cast<std::size_t>(perm[j])] = static_cast<index_t>(j);
  return inv;
}

/// Validity check: perm must be a bijection on [0, n).
inline bool is_valid_permutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (index_t v : perm) {
    if (v < 0 || v >= static_cast<index_t>(perm.size())) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace randla
