// parallel.hpp — minimal fork-join helper for the shared-memory CPU
// side of the paper's platform (two eight-core Xeons in §6).
//
// The BLAS-3 kernels split their output into independent column ranges
// and run each on its own thread; thread_local packing buffers keep the
// workers isolated. The global thread count defaults to the hardware
// concurrency and can be pinned (e.g. to 1 for bitwise-reproducible
// timing runs).
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "la/matrix.hpp"

namespace randla {

/// Global worker-count knob for the BLAS-3 kernels (1 = serial).
index_t blas_num_threads();
void set_blas_num_threads(index_t n);

/// Run fn(begin, end) over [0, total) split into at most
/// blas_num_threads() contiguous chunks of at least `grain` items.
/// Serial when one chunk suffices. fn must be safe to run concurrently
/// on disjoint ranges.
void parallel_ranges(index_t total, index_t grain,
                     const std::function<void(index_t, index_t)>& fn);

}  // namespace randla
