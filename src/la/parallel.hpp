// parallel.hpp — persistent worker pool for the shared-memory CPU side
// of the paper's platform (two eight-core Xeons in §6).
//
// The seed implementation spawned fresh std::threads on every BLAS-3
// call, so the fork-join cost was paid on the hot path of every figure
// bench. Workers are now long-lived and park on a condition variable
// between calls; parallel_ranges only pushes range descriptors into a
// shared queue and the caller participates in draining it, so an idle
// pool costs nothing and a busy one costs one lock per chunk.
//
// Concurrency contract:
//  * parallel_ranges may be called from any thread, including
//    concurrently (the serving runtime's scheduler workers all run
//    factorizations that bottom out here). Each call only waits on its
//    own chunks, and the calling thread claims chunks itself, so
//    completion never depends on pool workers being available.
//  * Nested calls (a chunk body that itself reaches parallel_ranges,
//    e.g. a GEMM inside a parallel TSQR subtree) degrade to serial
//    execution instead of deadlocking.
//  * The pool holds blas_num_threads()-1 workers (the caller is the
//    n-th lane) and is rebuilt lazily when the knob changes. Pinning
//    the knob to 1 gives strictly serial, bitwise-reproducible runs.
//
// The initial thread count comes from RANDLA_NUM_THREADS when set
// (CI's TSan stage uses this to force the pool on), otherwise from the
// hardware concurrency.
#pragma once

#include <cstdint>
#include <functional>

#include "la/matrix.hpp"

namespace randla {

/// Global worker-count knob for the BLAS kernels (1 = serial).
index_t blas_num_threads();
void set_blas_num_threads(index_t n);

/// Run fn(begin, end) over [0, total) split into at most
/// blas_num_threads() contiguous chunks of at least `grain` items.
/// Serial when one chunk suffices. fn must be safe to run concurrently
/// on disjoint ranges.
void parallel_ranges(index_t total, index_t grain,
                     const std::function<void(index_t, index_t)>& fn);

/// Observable pool counters (monotonic since process start), for tests
/// and telemetry: how many range-chunks ran, how many of those were
/// split batches (count > 1), and how many worker threads are resident.
struct PoolStats {
  std::uint64_t chunks_run = 0;    ///< total chunks executed (any lane)
  std::uint64_t split_batches = 0; ///< parallel_ranges calls that split
  std::uint64_t rebuilds = 0;      ///< pool resize events
  index_t workers = 0;             ///< resident worker threads right now
};
PoolStats pool_stats();

}  // namespace randla
