#include "la/svd_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "la/blas1.hpp"

namespace randla::lapack {

namespace {

// One-sided Jacobi on W (m×n, m ≥ n): rotate column pairs until all are
// numerically orthogonal; then σ_j = ‖W_j‖, U_j = W_j/σ_j, V accumulates
// the rotations.
template <class Real>
SvdResult<Real> svd_tall(ConstMatrixView<Real> a, Real tol, index_t max_sweeps) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  SvdResult<Real> out;
  out.u = Matrix<Real>::copy_of(a);
  out.v = Matrix<Real>::identity(n);
  out.sigma.assign(static_cast<std::size_t>(n), Real(0));

  if (tol <= Real(0)) {
    tol = Real(16) * std::numeric_limits<Real>::epsilon();
  }

  auto w = out.u.view();
  auto v = out.v.view();

  for (index_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        Real* wp = w.col_ptr(p);
        Real* wq = w.col_ptr(q);
        const Real app = blas::dot(m, wp, index_t{1}, wp, index_t{1});
        const Real aqq = blas::dot(m, wq, index_t{1}, wq, index_t{1});
        const Real apq = blas::dot(m, wp, index_t{1}, wq, index_t{1});
        if (std::abs(apq) <= tol * std::sqrt(app * aqq)) continue;
        rotated = true;

        // Two-by-two symmetric Schur decomposition (Golub & Van Loan).
        const Real zeta = (aqq - app) / (Real(2) * apq);
        const Real t = (zeta >= Real(0) ? Real(1) : Real(-1)) /
                       (std::abs(zeta) + std::sqrt(Real(1) + zeta * zeta));
        const Real c = Real(1) / std::sqrt(Real(1) + t * t);
        const Real s = c * t;

        // Rotate columns p, q of W and of V.
        for (index_t i = 0; i < m; ++i) {
          const Real x = wp[i];
          const Real y = wq[i];
          wp[i] = c * x - s * y;
          wq[i] = s * x + c * y;
        }
        Real* vp = v.col_ptr(p);
        Real* vq = v.col_ptr(q);
        for (index_t i = 0; i < n; ++i) {
          const Real x = vp[i];
          const Real y = vq[i];
          vp[i] = c * x - s * y;
          vq[i] = s * x + c * y;
        }
      }
    }
    out.sweeps = sweep + 1;
    if (!rotated) {
      out.converged = true;
      break;
    }
  }

  // Extract singular values and normalize U.
  for (index_t j = 0; j < n; ++j) {
    const Real nrm = blas::nrm2(m, w.col_ptr(j), index_t{1});
    out.sigma[static_cast<std::size_t>(j)] = nrm;
    if (nrm > Real(0)) blas::scal(m, Real(1) / nrm, w.col_ptr(j), index_t{1});
  }

  // Sort descending by σ, permuting U and V columns accordingly.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t i, index_t j) {
    return out.sigma[static_cast<std::size_t>(i)] >
           out.sigma[static_cast<std::size_t>(j)];
  });
  Matrix<Real> u_sorted(m, n);
  Matrix<Real> v_sorted(n, n);
  std::vector<Real> s_sorted(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    u_sorted.view().col(j).copy_from(out.u.view().col(src));
    v_sorted.view().col(j).copy_from(out.v.view().col(src));
    s_sorted[static_cast<std::size_t>(j)] =
        out.sigma[static_cast<std::size_t>(src)];
  }
  out.u = std::move(u_sorted);
  out.v = std::move(v_sorted);
  out.sigma = std::move(s_sorted);
  return out;
}

}  // namespace

template <class Real>
SvdResult<Real> svd_jacobi(ConstMatrixView<Real> a, Real tol,
                           index_t max_sweeps) {
  if (a.rows() >= a.cols()) return svd_tall(a, tol, max_sweeps);
  // Wide matrix: factor Aᵀ = UΣVᵀ, so A = VΣUᵀ.
  Matrix<Real> at = transposed(a);
  SvdResult<Real> r = svd_tall(ConstMatrixView<Real>(at.view()), tol, max_sweeps);
  std::swap(r.u, r.v);
  return r;
}

template <class Real>
std::vector<Real> singular_values(ConstMatrixView<Real> a) {
  return svd_jacobi(a).sigma;
}

#define RANDLA_INSTANTIATE_SVD(Real)                                         \
  template struct SvdResult<Real>;                                           \
  template SvdResult<Real> svd_jacobi<Real>(ConstMatrixView<Real>, Real,     \
                                            index_t);                        \
  template std::vector<Real> singular_values<Real>(ConstMatrixView<Real>);

RANDLA_INSTANTIATE_SVD(float)
RANDLA_INSTANTIATE_SVD(double)

#undef RANDLA_INSTANTIATE_SVD

}  // namespace randla::lapack
