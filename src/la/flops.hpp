// flops.hpp — standard flop counts for the kernels in this library.
//
// Used by the benches to convert measured/modeled times into Gflop/s, and
// by randla::model to evaluate the Figure 5 cost table.
#pragma once

#include "la/matrix.hpp"

namespace randla::flops {

/// C(m×n) += A(m×k)·B(k×n): 2mnk.
inline double gemm(index_t m, index_t n, index_t k) {
  return 2.0 * double(m) * double(n) * double(k);
}

/// y(m) += A(m×n)·x(n): 2mn.
inline double gemv(index_t m, index_t n) { return 2.0 * double(m) * double(n); }

/// Rank-k symmetric update of an n×n triangle: n(n+1)k ≈ n²k.
inline double syrk(index_t n, index_t k) {
  return double(n) * double(n + 1) * double(k);
}

/// Cholesky of n×n: n³/3.
inline double potrf(index_t n) {
  return double(n) * double(n) * double(n) / 3.0;
}

/// Triangular solve, n×n triangle against m right-hand sides: m·n².
inline double trsm(index_t m, index_t n) {
  return double(m) * double(n) * double(n);
}

/// Householder QR of m×n (m ≥ n): 2mn² − 2n³/3.
inline double geqrf(index_t m, index_t n) {
  return 2.0 * double(m) * double(n) * double(n) -
         2.0 * double(n) * double(n) * double(n) / 3.0;
}

/// Explicit Q generation (orgqr m×n from n reflectors): ≈ 2mn² − 2n³/3.
inline double orgqr(index_t m, index_t n) { return geqrf(m, n); }

/// CholQR of m×n (m ≥ n): syrk + potrf + trsm ≈ 2mn² + n³/3.
inline double cholqr(index_t m, index_t n) {
  return syrk(n, m) + potrf(n) + trsm(m, n);
}

/// Gram–Schmidt (CGS or MGS) of m×n: 2mn².
inline double gram_schmidt(index_t m, index_t n) {
  return 2.0 * double(m) * double(n) * double(n);
}

/// Truncated QP3: k steps of Householder QR with pivoting on m×n:
/// ≈ 4mnk − 2(m+n)k² + 4k³/3 (LAPACK working note count, truncated).
inline double qp3_truncated(index_t m, index_t n, index_t k) {
  return 4.0 * double(m) * double(n) * double(k) -
         2.0 * (double(m) + double(n)) * double(k) * double(k) +
         4.0 * double(k) * double(k) * double(k) / 3.0;
}

/// Complex radix-2 FFT of length N: 5·N·log2(N) (standard convention).
inline double fft(index_t n) {
  double lg = 0;
  for (index_t v = 1; v < n; v *= 2) lg += 1.0;
  return 5.0 * double(n) * lg;
}

}  // namespace randla::flops
