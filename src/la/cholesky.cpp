#include "la/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas1.hpp"
#include "la/blas3.hpp"

namespace randla::lapack {

namespace {

// Unblocked right-looking Cholesky on a small diagonal block. The inner
// k-sweeps are dot products: stride-1 down stored columns in the Upper
// case (vectorized dot kernel), row dots with stride ld() in the Lower
// case.
template <class Real>
index_t potrf_unblocked(Uplo uplo, MatrixView<Real> a) {
  const index_t n = a.rows();
  const index_t ld = a.ld();
  for (index_t j = 0; j < n; ++j) {
    Real d = a(j, j);
    if (j > 0) {
      if (uplo == Uplo::Upper)
        d -= blas::dot(j, a.col_ptr(j), index_t{1}, a.col_ptr(j), index_t{1});
      else
        d -= blas::dot(j, &a(j, 0), ld, &a(j, 0), ld);
    }
    if (!(d > Real(0))) return j + 1;  // catches NaN as well
    const Real r = std::sqrt(d);
    a(j, j) = r;
    if (uplo == Uplo::Upper) {
      for (index_t i = j + 1; i < n; ++i) {
        Real s = a(j, i);
        if (j > 0)
          s -= blas::dot(j, a.col_ptr(j), index_t{1}, a.col_ptr(i),
                         index_t{1});
        a(j, i) = s / r;
      }
    } else {
      for (index_t i = j + 1; i < n; ++i) {
        Real s = a(i, j);
        if (j > 0) s -= blas::dot(j, &a(j, 0), ld, &a(i, 0), ld);
        a(i, j) = s / r;
      }
    }
  }
  return 0;
}

}  // namespace

template <class Real>
index_t potrf(Uplo uplo, MatrixView<Real> a) {
  const index_t n = a.rows();
  assert(a.cols() == n);
  constexpr index_t nb = 64;

  if (n <= nb) return potrf_unblocked(uplo, a);

  for (index_t j = 0; j < n; j += nb) {
    const index_t jb = std::min(nb, n - j);
    // Update and factor the diagonal block.
    if (j > 0) {
      if (uplo == Uplo::Upper) {
        blas::syrk(Uplo::Upper, Op::Trans, Real(-1),
                   ConstMatrixView<Real>(a.block(0, j, j, jb)), Real(1),
                   a.block(j, j, jb, jb));
      } else {
        blas::syrk(Uplo::Lower, Op::NoTrans, Real(-1),
                   ConstMatrixView<Real>(a.block(j, 0, jb, j)), Real(1),
                   a.block(j, j, jb, jb));
      }
    }
    const index_t info = potrf_unblocked(uplo, a.block(j, j, jb, jb));
    if (info != 0) return j + info;

    const index_t rest = n - (j + jb);
    if (rest == 0) continue;
    if (uplo == Uplo::Upper) {
      // A(j:j+jb, j+jb:) ← R(j,j)⁻ᵀ (A(j:j+jb, j+jb:) − A(0:j,j:j+jb)ᵀ A(0:j,j+jb:))
      if (j > 0) {
        blas::gemm(Op::Trans, Op::NoTrans, Real(-1),
                   ConstMatrixView<Real>(a.block(0, j, j, jb)),
                   ConstMatrixView<Real>(a.block(0, j + jb, j, rest)), Real(1),
                   a.block(j, j + jb, jb, rest));
      }
      blas::trsm(Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit, Real(1),
                 ConstMatrixView<Real>(a.block(j, j, jb, jb)),
                 a.block(j, j + jb, jb, rest));
    } else {
      if (j > 0) {
        blas::gemm(Op::NoTrans, Op::Trans, Real(-1),
                   ConstMatrixView<Real>(a.block(j + jb, 0, rest, j)),
                   ConstMatrixView<Real>(a.block(j, 0, jb, j)), Real(1),
                   a.block(j + jb, j, rest, jb));
      }
      blas::trsm(Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit, Real(1),
                 ConstMatrixView<Real>(a.block(j, j, jb, jb)),
                 a.block(j + jb, j, rest, jb));
    }
  }
  return 0;
}

template index_t potrf<float>(Uplo, MatrixView<float>);
template index_t potrf<double>(Uplo, MatrixView<double>);

}  // namespace randla::lapack
