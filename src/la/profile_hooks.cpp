#include "la/profile_hooks.hpp"

#include <cstring>
#include <string>

#include "model/perfmodel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace randla::la_prof {

namespace {

// syrk/trsm/trmm tile their updates through gemm; only the outermost
// public kernel on a thread records, so flops are attributed once.
thread_local int t_kernel_depth = 0;

void record_kernel(const char* kernel, double seconds, double flops,
                   long long inner, long long major) {
  auto& g = obs::Registry::global();
  const std::string base = std::string("la_") + kernel;
  g.counter(base + "_calls_total", "kernel invocations").inc();
  g.counter(base + "_seconds_total", "wall seconds inside the kernel")
      .add(seconds);
  g.counter(base + "_flops_total", "useful flops executed").add(flops);
  if (seconds <= 0 || flops <= 0) return;
  const double achieved = flops / seconds / 1e9;
  g.gauge(base + "_gflops", "achieved Gflop/s, last invocation")
      .set(achieved);
  if (inner > 0 && major > 0) {
    // Efficiency against what the calibrated K40c model predicts for
    // this shape — the paper's achieved-vs-peak lens (Fig. 5).
    const double predicted =
        model::gemm_gflops(model::DeviceSpec{}, index_t(inner),
                           index_t(major));
    if (predicted > 0)
      g.gauge(base + "_efficiency_vs_model",
              "achieved Gflop/s over model-predicted Gflop/s")
          .set(achieved / predicted);
  }
}

}  // namespace

KernelScope::KernelScope(const char* kernel, double flops, long long inner,
                         long long major)
    : kernel_(kernel), flops_(flops), inner_(inner), major_(major) {
  if (!obs::profiling_enabled()) return;
  entered_ = true;
  armed_ = ++t_kernel_depth == 1;
  if (armed_) t0_ = std::chrono::steady_clock::now();
}

KernelScope::~KernelScope() {
  if (!entered_) return;
  --t_kernel_depth;
  if (!armed_) return;
  const auto t1 = std::chrono::steady_clock::now();
  record_kernel(kernel_, std::chrono::duration<double>(t1 - t0_).count(),
                flops_, inner_, major_);
  if (obs::Tracer::global().enabled()) {
    const std::uint64_t id = obs::current_trace_id();
    if (id != 0) obs::Tracer::global().record_complete(id, kernel_, "la",
                                                       t0_, t1);
  }
}

}  // namespace randla::la_prof
