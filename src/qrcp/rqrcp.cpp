#include "qrcp/rqrcp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "la/blas1.hpp"
#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"
#include "la/norms.hpp"
#include "qrcp/qrcp.hpp"
#include "rsvd/sketch.hpp"

namespace randla::qrcp {

namespace {

// Downdating the sample through R₁₁⁻¹ loses about cond(R₁₁) in the
// trailing sketch; once the panel's diagonal spans more than 1/√ε the
// update is no longer trustworthy and the trailing block is resketched
// with a fresh Ω instead (same safeguard philosophy as QP3's norm
// recompute trigger).
template <class Real>
Real downdate_cond_threshold() {
  return std::sqrt(std::numeric_limits<Real>::epsilon());
}

// Deterministic per-block seed for a resketch: the replacement Ω must
// differ from the original draw but stay a pure function of (seed,
// block index) so replays are bitwise reproducible.
inline std::uint64_t resketch_seed(std::uint64_t seed, index_t block) {
  return seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(block + 1));
}

// Replay the first `bcur` pivot choices of the sketch QRCP (expressed
// as its final permutation `lperm` over the nt trailing columns) onto
// A, B and the global permutation as a sequence of column swaps.
template <class Real>
void apply_sketch_pivots(MatrixView<Real> a, MatrixView<Real> b,
                         Permutation& jpvt, index_t j0, index_t nt,
                         const Permutation& lperm, index_t bcur) {
  // pos[orig] = current trailing slot of original column j0+orig;
  // who[slot] = original column currently in that slot.
  std::vector<index_t> pos(static_cast<std::size_t>(nt));
  std::vector<index_t> who(static_cast<std::size_t>(nt));
  std::iota(pos.begin(), pos.end(), index_t{0});
  std::iota(who.begin(), who.end(), index_t{0});
  for (index_t jj = 0; jj < bcur; ++jj) {
    const index_t orig = lperm[static_cast<std::size_t>(jj)];
    const index_t src = pos[static_cast<std::size_t>(orig)];
    if (src == jj) continue;
    blas::swap(a.rows(), a.col_ptr(j0 + jj), index_t{1}, a.col_ptr(j0 + src),
               index_t{1});
    blas::swap(b.rows(), b.col_ptr(j0 + jj), index_t{1}, b.col_ptr(j0 + src),
               index_t{1});
    std::swap(jpvt[static_cast<std::size_t>(j0 + jj)],
              jpvt[static_cast<std::size_t>(j0 + src)]);
    std::swap(who[static_cast<std::size_t>(jj)],
              who[static_cast<std::size_t>(src)]);
    pos[static_cast<std::size_t>(who[static_cast<std::size_t>(jj)])] = jj;
    pos[static_cast<std::size_t>(who[static_cast<std::size_t>(src)])] = src;
  }
}

}  // namespace

template <class Real>
index_t rqrcp_factor(MatrixView<Real> a, Permutation& jpvt,
                     std::vector<Real>& tau, index_t kmax,
                     const RqrcpOptions& opts, RqrcpStats* stats,
                     index_t max_blocks) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const bool adaptive = opts.epsilon > 0;
  index_t k = std::min({kmax, m, n});
  if (adaptive) {
    const index_t cap = opts.max_rank > 0 ? opts.max_rank : std::min(m, n);
    k = std::min(cap, std::min(m, n));
  }
  jpvt = identity_permutation(n);
  RqrcpStats local;
  if (k <= 0 || m == 0 || n == 0) {
    tau.clear();
    if (stats) *stats = local;
    return 0;
  }
  tau.assign(static_cast<std::size_t>(k), Real(0));

  const index_t b = std::max<index_t>(1, opts.block);
  const index_t l = std::min(m, b + std::max<index_t>(0, opts.oversample));

  Real tol = Real(0);
  if (adaptive) {
    tol = static_cast<Real>(opts.epsilon);
    if (opts.relative) tol *= norm_fro<Real>(ConstMatrixView<Real>(a));
  }

  // Sketch once: B = Ω·A, ℓ×n. Every later block works on (a downdate
  // of) this one gemm's output.
  Matrix<Real> bs;
  {
    rsvd::PhaseTimer t(local.sketch_s, "qrcp.sketch");
    bs = rsvd::gaussian_sketch<Real>(ConstMatrixView<Real>(a), l, opts.seed);
  }
  local.flops_sketch += flops::gemm(l, n, m);

  std::vector<Real> tau_s, tau_p;
  Permutation lperm;
  index_t j0 = 0;
  while (j0 < k) {
    if (max_blocks > 0 && local.blocks >= max_blocks) {
      local.truncated = true;
      break;
    }
    const index_t nt = n - j0;
    if (adaptive) {
      // ‖B_trail‖_F/√ℓ is an unbiased estimate of ‖A₂₂‖_F = ‖A − QRPᵀ‖_F
      // at the current rank (the downdated B is S₂·A₂₂ with S₂ gaussian).
      const Real est =
          norm_fro<Real>(ConstMatrixView<Real>(bs.view().block(0, j0, l, nt))) /
          std::sqrt(static_cast<Real>(l));
      if (est <= tol) break;
    }
    const index_t bcur = std::min(b, k - j0);

    {
      // --- panel: QRCP on the short sketch picks the pivots; the
      // pivoted panel of A is then factored with unpivoted blocked QR.
      rsvd::PhaseTimer t(local.panel_s, "qrcp.panel");
      Matrix<Real> s(l, nt);
      s.view().copy_from(ConstMatrixView<Real>(bs.view().block(0, j0, l, nt)));
      geqp2<Real>(s.view(), lperm, tau_s, bcur);
      local.flops_panel += 4.0 * double(l) * double(nt) * double(bcur);
      apply_sketch_pivots(a, bs.view(), jpvt, j0, nt, lperm, bcur);

      lapack::geqrf(a.block(j0, j0, m - j0, bcur), tau_p);
      for (index_t jj = 0; jj < bcur; ++jj)
        tau[static_cast<std::size_t>(j0 + jj)] =
            tau_p[static_cast<std::size_t>(jj)];
      local.flops_panel += flops::geqrf(m - j0, bcur);
    }

    const index_t rest = n - j0 - bcur;
    if (rest > 0) {
      const auto v =
          ConstMatrixView<Real>(a.block(j0, j0, m - j0, bcur));
      {
        // --- update: one compact-WY blocked Householder application —
        // trmm/gemm only, no per-column sync.
        rsvd::PhaseTimer t(local.update_s, "qrcp.update");
        Matrix<Real> tmat(bcur, bcur);
        lapack::larft(v, tau.data() + j0, tmat.view());
        lapack::larfb_left(Op::Trans, v, ConstMatrixView<Real>(tmat.view()),
                           a.block(j0, j0 + bcur, m - j0, rest));
        local.flops_update += 4.0 * double(m - j0) * double(bcur) * double(rest);
      }
      {
        // --- downdate: B₂ ← B₂ − (B₁R₁₁⁻¹)R₁₂ = S₂·A₂₂, a fresh
        // gaussian sketch of the updated trailing matrix without
        // touching A again.
        rsvd::PhaseTimer t(local.downdate_s, "qrcp.downdate");
        Real dmax = Real(0);
        Real dmin = std::numeric_limits<Real>::max();
        for (index_t i = 0; i < bcur; ++i) {
          const Real d = std::abs(a(j0 + i, j0 + i));
          dmax = std::max(dmax, d);
          dmin = std::min(dmin, d);
        }
        if (dmin <= dmax * downdate_cond_threshold<Real>() || dmax == Real(0)) {
          // R₁₁ too ill-conditioned for the update: resketch A₂₂.
          Matrix<Real> fresh = rsvd::gaussian_sketch<Real>(
              ConstMatrixView<Real>(
                  a.block(j0 + bcur, j0 + bcur, m - j0 - bcur, rest)),
              l, resketch_seed(opts.seed, local.blocks));
          bs.view().block(0, j0 + bcur, l, rest).copy_from(
              ConstMatrixView<Real>(fresh.view()));
          local.resketches++;
          local.flops_sketch += flops::gemm(l, rest, m - j0 - bcur);
        } else {
          Matrix<Real> w(l, bcur);
          w.view().copy_from(
              ConstMatrixView<Real>(bs.view().block(0, j0, l, bcur)));
          blas::trsm(Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                     Real(1),
                     ConstMatrixView<Real>(a.block(j0, j0, bcur, bcur)),
                     w.view());
          blas::gemm(Op::NoTrans, Op::NoTrans, Real(-1),
                     ConstMatrixView<Real>(w.view()),
                     ConstMatrixView<Real>(a.block(j0, j0 + bcur, bcur, rest)),
                     Real(1), bs.view().block(0, j0 + bcur, l, rest));
          local.flops_downdate +=
              flops::trsm(l, bcur) + flops::gemm(l, rest, bcur);
        }
      }
    }

    j0 += bcur;
    local.blocks++;
  }

  local.rank = j0;
  tau.resize(static_cast<std::size_t>(j0));
  if (stats) *stats = local;
  return j0;
}

namespace {

// Extract explicit factors from the in-place core's output.
template <class Real>
RqrcpResult<Real> build_result(Matrix<Real>&& work, std::vector<Real>&& tau,
                               Permutation&& perm, const RqrcpStats& st,
                               bool want_q) {
  const index_t m = work.rows();
  const index_t n = work.cols();
  const index_t k = st.rank;
  RqrcpResult<Real> out;
  out.perm = std::move(perm);
  out.stats = st;
  out.r1.resize(k, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i <= j; ++i) out.r1(i, j) = work(i, j);
  out.r2.resize(k, n - k);
  for (index_t j = k; j < n; ++j)
    for (index_t i = 0; i < k; ++i) out.r2(i, j - k) = work(i, j);
  out.rdiag.resize(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i)
    out.rdiag[static_cast<std::size_t>(i)] = out.r1(i, i);
  if (want_q && k > 0) {
    lapack::orgqr(work.view(), tau, k);
    out.q.resize(m, k);
    out.q.view().copy_from(ConstMatrixView<Real>(work.block(0, 0, m, k)));
  }
  return out;
}

}  // namespace

template <class Real>
RqrcpResult<Real> rqrcp_truncated(ConstMatrixView<Real> a, index_t k,
                                  const RqrcpOptions& opts,
                                  index_t max_blocks) {
  if (k > std::min(a.rows(), a.cols()))
    throw std::invalid_argument("rqrcp_truncated: k exceeds min(rows, cols)");
  RqrcpOptions fixed = opts;
  fixed.epsilon = 0;  // fixed-rank mode regardless of caller leftovers
  Matrix<Real> work = Matrix<Real>::copy_of(a);
  Permutation perm;
  std::vector<Real> tau;
  RqrcpStats st;
  rqrcp_factor(work.view(), perm, tau, k, fixed, &st, max_blocks);
  return build_result(std::move(work), std::move(tau), std::move(perm), st,
                      opts.want_q);
}

template <class Real>
RqrcpResult<Real> rqrcp_adaptive(ConstMatrixView<Real> a,
                                 const RqrcpOptions& opts,
                                 index_t max_blocks) {
  if (opts.epsilon <= 0)
    throw std::invalid_argument("rqrcp_adaptive: epsilon must be positive");
  Matrix<Real> work = Matrix<Real>::copy_of(a);
  Permutation perm;
  std::vector<Real> tau;
  RqrcpStats st;
  rqrcp_factor(work.view(), perm, tau, std::min(a.rows(), a.cols()), opts,
               &st, max_blocks);
  return build_result(std::move(work), std::move(tau), std::move(perm), st,
                      opts.want_q);
}

#define RANDLA_INSTANTIATE_RQRCP(Real)                                        \
  template index_t rqrcp_factor<Real>(MatrixView<Real>, Permutation&,         \
                                      std::vector<Real>&, index_t,            \
                                      const RqrcpOptions&, RqrcpStats*,       \
                                      index_t);                               \
  template struct RqrcpResult<Real>;                                          \
  template RqrcpResult<Real> rqrcp_truncated<Real>(                           \
      ConstMatrixView<Real>, index_t, const RqrcpOptions&, index_t);          \
  template RqrcpResult<Real> rqrcp_adaptive<Real>(                            \
      ConstMatrixView<Real>, const RqrcpOptions&, index_t);

RANDLA_INSTANTIATE_RQRCP(float)
RANDLA_INSTANTIATE_RQRCP(double)

#undef RANDLA_INSTANTIATE_RQRCP

}  // namespace randla::qrcp
