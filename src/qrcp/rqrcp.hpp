// rqrcp.hpp — randomized QR with column pivoting via sample update
// (Duersch–Gu 1509.06820, Martinsson et al. 1503.07157).
//
// QP3 synchronizes on every column: each pivot needs the downdated
// norms of the whole trailing matrix, which keeps half the flops in
// BLAS-2 gemv (the bottleneck qrcp.cpp measures). RQRCP moves pivoting
// onto a short sketch instead:
//
//   1. sketch    B = Ω·A once, Ω gaussian ℓ×m with ℓ = block + oversample;
//   2. panel     QRCP on the small ℓ×(n−j) trailing sketch picks the
//                next `block` pivots — no sync against A at all;
//   3. update    the pivoted panel of A is factored (geqrf) and the
//                trailing matrix takes one blocked Householder update
//                (larft + larfb: pure trmm/gemm);
//   4. downdate  B is *updated*, not resketched: with Ω·Q = [S₁ S₂],
//                B₂ − (B₁R₁₁⁻¹)R₁₂ = S₂·A₂₂ is a fresh gaussian sketch
//                of the updated trailing matrix, for one trsm + gemm.
//
// Everything outside the ℓ-row panel QRCP is BLAS-3. The fixed-accuracy
// variant (rqrcp_adaptive) discovers the rank on the fly: ‖B_trail‖_F/√ℓ
// is an unbiased estimate of the trailing-block norm ‖A₂₂‖_F, so the
// sweep stops as soon as the estimate drops under the tolerance — the
// same ε/relative plumbing as rsvd::AdaptiveOptions, without an a-priori
// rank.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "la/permutation.hpp"

namespace randla::qrcp {

/// Knobs shared by the fixed-rank and fixed-accuracy drivers.
struct RqrcpOptions {
  index_t block = 32;          ///< pivots chosen per block sweep (b)
  index_t oversample = 8;      ///< extra sketch rows: ℓ = block + oversample
  std::uint64_t seed = 20151115;  ///< Ω seed (paper's default lineage)
  bool want_q = false;         ///< form the explicit m×k Q factor
  // --- fixed-accuracy mode (rqrcp_adaptive) ---------------------------
  double epsilon = 0;          ///< target ‖A − QRPᵀ‖_F; 0 = fixed-rank mode
  bool relative = false;       ///< ε is a fraction of ‖A‖_F
  index_t max_rank = 0;        ///< adaptive rank cap; 0 = min(m, n)
};

/// Diagnostics of one RQRCP run: per-phase seconds/flops (the obs
/// `qrcp_*` series and the perfmodel crossover bench read these).
struct RqrcpStats {
  index_t rank = 0;            ///< columns factored
  index_t blocks = 0;          ///< block sweeps performed
  index_t resketches = 0;      ///< downdates abandoned for a fresh Ω·A₂₂
  /// Sweep cut short (deadline degradation / max_blocks) before reaching
  /// the requested rank or tolerance.
  bool truncated = false;
  double sketch_s = 0;         ///< B = Ω·A (+ any resketch)
  double panel_s = 0;          ///< sketch QRCP + panel geqrf
  double update_s = 0;         ///< blocked Householder trailing updates
  double downdate_s = 0;       ///< sample updates of B
  double flops_sketch = 0;
  double flops_panel = 0;
  double flops_update = 0;
  double flops_downdate = 0;

  double total_s() const { return sketch_s + panel_s + update_s + downdate_s; }
  double total_flops() const {
    return flops_sketch + flops_panel + flops_update + flops_downdate;
  }
};

/// In-place core, geqp3-compatible output convention: on exit the
/// leading `rank` columns of `a` hold R above the diagonal and the
/// Householder vectors below it, `jpvt[j]` is the original index of the
/// column now at position j, `tau` holds the reflector scalars. Factors
/// min(kmax, m, n) columns in fixed-rank mode; in fixed-accuracy mode
/// (opts.epsilon > 0) it stops at the first block whose sketch-estimated
/// trailing norm is within tolerance. `max_blocks` caps the sweep
/// (0 = unlimited) — the scheduler's deadline degradation hook.
/// Returns the number of columns factored.
template <class Real>
index_t rqrcp_factor(MatrixView<Real> a, Permutation& jpvt,
                     std::vector<Real>& tau, index_t kmax,
                     const RqrcpOptions& opts, RqrcpStats* stats = nullptr,
                     index_t max_blocks = 0);

/// Explicit factors of a truncated RQRCP: A·P ≈ Q·[R₁ R₂] with the rank
/// discovered (adaptive) or requested (fixed). `rdiag` is the diagonal
/// of R — the rank-revealing decay profile the serving result returns.
template <class Real>
struct RqrcpResult {
  Matrix<Real> q;          ///< m×k explicit Q (empty unless want_q)
  Matrix<Real> r1;         ///< k×k upper triangular
  Matrix<Real> r2;         ///< k×(n−k)
  std::vector<Real> rdiag; ///< diag(R₁), length k
  Permutation perm;        ///< column permutation, length n
  RqrcpStats stats;
};

/// Fixed-rank driver: factor k columns of a copy of `a`.
template <class Real>
RqrcpResult<Real> rqrcp_truncated(ConstMatrixView<Real> a, index_t k,
                                  const RqrcpOptions& opts = {},
                                  index_t max_blocks = 0);

/// Fixed-accuracy driver (opts.epsilon must be > 0): discover the rank
/// from the sketch's trailing-block norm estimates.
template <class Real>
RqrcpResult<Real> rqrcp_adaptive(ConstMatrixView<Real> a,
                                 const RqrcpOptions& opts,
                                 index_t max_blocks = 0);

}  // namespace randla::qrcp
