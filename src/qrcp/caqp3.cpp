#include "qrcp/caqp3.hpp"

#include <algorithm>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"

namespace randla::qrcp {

namespace {

// One tournament game: run a local truncated QRCP on the trailing rows
// of the candidate columns and return the (globally indexed) winners in
// pivot order.
template <class Real>
std::vector<index_t> play_game(ConstMatrixView<Real> a, index_t row0,
                               const std::vector<index_t>& candidates,
                               index_t b, QrcpStats& stats) {
  const index_t m = a.rows();
  const index_t nc = static_cast<index_t>(candidates.size());
  const index_t winners = std::min(b, nc);

  // Gather the candidate columns (trailing rows only).
  Matrix<Real> local(m - row0, nc);
  for (index_t j = 0; j < nc; ++j)
    local.view().col(j).copy_from(
        a.block(row0, candidates[static_cast<std::size_t>(j)], m - row0, 1));

  Permutation lp;
  std::vector<Real> ltau;
  geqp2(local.view(), lp, ltau, winners, nullptr);
  stats.flops_blas2 += 4.0 * double(m - row0) * double(nc) * double(winners);

  std::vector<index_t> out(static_cast<std::size_t>(winners));
  for (index_t j = 0; j < winners; ++j)
    out[static_cast<std::size_t>(j)] =
        candidates[static_cast<std::size_t>(lp[static_cast<std::size_t>(j)])];
  return out;
}

}  // namespace

template <class Real>
index_t caqp3(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats, index_t block_size,
              index_t group_size) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min({kmax, m, n});
  tau.assign(static_cast<std::size_t>(k), Real(0));
  jpvt = identity_permutation(n);
  if (group_size <= 0) group_size = 2 * block_size;
  QrcpStats local_stats;

  Matrix<Real> t_factor(block_size, block_size);

  index_t j0 = 0;
  while (j0 < k) {
    const index_t b = std::min(block_size, k - j0);

    // ---- Tournament: elect b pivot columns from the trailing set with
    // a single reduction tree (no per-column synchronization).
    std::vector<index_t> alive;
    alive.reserve(static_cast<std::size_t>(n - j0));
    for (index_t c = j0; c < n; ++c) alive.push_back(c);
    while (static_cast<index_t>(alive.size()) > b) {
      std::vector<index_t> next;
      for (std::size_t g = 0; g < alive.size();
           g += static_cast<std::size_t>(group_size)) {
        const std::size_t end =
            std::min(alive.size(), g + static_cast<std::size_t>(group_size));
        std::vector<index_t> group(alive.begin() + static_cast<std::ptrdiff_t>(g),
                                   alive.begin() + static_cast<std::ptrdiff_t>(end));
        auto winners = play_game(ConstMatrixView<Real>(a), j0, group, b,
                                 local_stats);
        next.insert(next.end(), winners.begin(), winners.end());
      }
      if (next.size() >= alive.size()) break;  // cannot shrink further
      alive = std::move(next);
    }
    // Final ordering game if more than one group fed the last round.
    if (static_cast<index_t>(alive.size()) > b)
      alive = play_game(ConstMatrixView<Real>(a), j0, alive, b, local_stats);

    // ---- Swap the winners to the panel positions, in pivot order.
    // (Process in order; if a winner was displaced by an earlier swap of
    // this panel, follow it.)
    for (index_t j = 0; j < static_cast<index_t>(alive.size()); ++j) {
      index_t src = alive[static_cast<std::size_t>(j)];
      // An earlier swap this panel may have moved the column at `src`.
      for (index_t jj = 0; jj < j; ++jj) {
        if (alive[static_cast<std::size_t>(jj)] == src) {
          // already placed — cannot happen (winners are distinct)
          break;
        }
      }
      const index_t dst = j0 + j;
      if (src == dst) continue;
      // If src < dst it was swapped away earlier; find where it went.
      // Track via jpvt values: search the trailing region for the column
      // whose current position holds the original winner.
      blas::swap(m, a.col_ptr(dst), index_t{1}, a.col_ptr(src), index_t{1});
      std::swap(jpvt[static_cast<std::size_t>(dst)],
                jpvt[static_cast<std::size_t>(src)]);
      // Any later winner that pointed at `dst` now lives at `src`.
      for (index_t jj = j + 1; jj < static_cast<index_t>(alive.size()); ++jj)
        if (alive[static_cast<std::size_t>(jj)] == dst)
          alive[static_cast<std::size_t>(jj)] = src;
    }

    // ---- Unpivoted blocked Householder step on the selected panel.
    auto panel = a.block(j0, j0, m - j0, b);
    std::vector<Real> panel_tau;
    lapack::geqrf(panel, panel_tau);
    for (index_t j = 0; j < b; ++j)
      tau[static_cast<std::size_t>(j0 + j)] = panel_tau[static_cast<std::size_t>(j)];
    local_stats.flops_blas2 += flops::geqrf(m - j0, b);

    const index_t rest = n - (j0 + b);
    if (rest > 0) {
      auto tb = t_factor.block(0, 0, b, b);
      lapack::larft(ConstMatrixView<Real>(panel), panel_tau.data(), tb);
      lapack::larfb_left(Op::Trans, ConstMatrixView<Real>(panel),
                         ConstMatrixView<Real>(tb),
                         a.block(j0, j0 + b, m - j0, rest));
      local_stats.flops_blas3 += flops::gemm(m - j0, rest, b) * 2.0;
    }
    local_stats.panels++;
    local_stats.columns_factored = j0 + b;
    j0 += b;
  }
  if (stats) *stats = local_stats;
  return k;
}

template index_t caqp3<float>(MatrixView<float>, Permutation&,
                              std::vector<float>&, index_t, QrcpStats*,
                              index_t, index_t);
template index_t caqp3<double>(MatrixView<double>, Permutation&,
                               std::vector<double>&, index_t, QrcpStats*,
                               index_t, index_t);

}  // namespace randla::qrcp
