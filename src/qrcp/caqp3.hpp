// caqp3.hpp — communication-avoiding rank-revealing QRCP with tournament
// pivoting (Demmel, Grigori, Gu, Xiang [4]).
//
// QP3 needs one global synchronization per column to pick a pivot — the
// cost the paper's whole argument hangs on. Tournament pivoting replaces
// the ℓ per-column reductions of a panel with a single reduction tree:
// every group of candidate columns elects `b` local winners by a local
// QRCP, winners play off pairwise up the tree, and the final b columns
// are factored with an *unpivoted* blocked Householder step. Paper §11
// names this algorithm (and its Fig. 5 lists its asymptotic costs) as
// the planned deterministic comparator.
#pragma once

#include "qrcp/qrcp.hpp"

namespace randla::qrcp {

/// Truncated tournament-pivoting QRCP. Same output convention as
/// geqp2/geqp3: factors the leading `kmax` columns of `a` in place
/// (R upper, Householder vectors below), `jpvt[j]` = original index of
/// the column at position j, `tau` the reflector scalars.
/// `block_size` is the panel width b; `group_size` the tournament group
/// width (0 ⇒ 2b). Returns the number of columns factored.
template <class Real>
index_t caqp3(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats = nullptr,
              index_t block_size = 32, index_t group_size = 0);

}  // namespace randla::qrcp
