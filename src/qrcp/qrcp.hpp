// qrcp.hpp — QR factorization with column pivoting (paper §2).
//
// Two variants mirroring the paper's discussion:
//  * geqp2 — the column-based algorithm: pivot on the largest downdated
//    norm, apply each reflector to the whole trailing matrix with BLAS-2
//    operations.
//  * geqp3 — the block algorithm of Quintana-Ortí, Sun & Bischof
//    (LAPACK's QP3): panels accumulate reflector coefficients in F so
//    the trailing matrix is updated once per panel with GEMM. Half the
//    flops (the F gemv per step) remain BLAS-2 — the bottleneck the
//    paper measures — and downdated column norms are recomputed when
//    round-off makes them untrustworthy, terminating panels early.
//
// Both are truncated: factoring stops after `kmax` columns, giving the
// rank-k approximation A·P ≈ Q·R of equation (1).
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "la/permutation.hpp"

namespace randla::qrcp {

/// Diagnostics of a QP3 run.
struct QrcpStats {
  index_t columns_factored = 0;
  index_t norm_recomputes = 0;   ///< columns whose norm was recomputed
  index_t panels = 0;            ///< trailing updates performed
  double flops_blas2 = 0;        ///< flops spent in gemv-class work
  double flops_blas3 = 0;        ///< flops spent in gemm-class work
};

/// Column-based truncated QRCP (BLAS-2). On exit the leading kmax
/// columns of `a` hold R (upper part) and the Householder vectors
/// (below the diagonal); `jpvt[j]` is the original index of the column
/// now at position j; `tau` holds the kmax reflector scalars.
/// Returns the number of columns factored (== kmax unless the matrix
/// runs out of columns/rows first).
template <class Real>
index_t geqp2(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats = nullptr);

/// Blocked truncated QP3 (BLAS-3 trailing updates, norm downdating with
/// the LAPACK recompute trigger). Same output convention as geqp2.
template <class Real>
index_t geqp3(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats = nullptr,
              index_t block_size = 32);

/// Factors extracted from a truncated QRCP of B (ℓ×n):
/// B·P ≈ Q̂·[R̂₁ R̂₂] with R̂₁ (k×k, invertible triangle) and R̂₂ (k×(n−k)).
template <class Real>
struct QrcpFactors {
  Matrix<Real> q;        ///< ℓ×k explicit orthonormal factor
  Matrix<Real> r1;       ///< k×k upper triangular
  Matrix<Real> r2;       ///< k×(n−k)
  Permutation perm;      ///< column permutation, length n
  QrcpStats stats;
};

/// Convenience driver used by random sampling Step 2: truncated QP3 of a
/// copy of `b`, returning explicit factors.
template <class Real>
QrcpFactors<Real> qrcp_truncated(ConstMatrixView<Real> b, index_t k,
                                 index_t block_size = 32);

}  // namespace randla::qrcp
