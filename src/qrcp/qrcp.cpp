#include "qrcp/qrcp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/blas3.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"

namespace randla::qrcp {

namespace {

// LAPACK's dlaqp2/dlaqps downdating tolerance: when the downdated norm
// estimate has lost half the digits relative to the last exact value,
// recompute it.
template <class Real>
Real downdate_tolerance() {
  return std::sqrt(std::numeric_limits<Real>::epsilon());
}

// Swap columns j1 and j2 of A plus all pivot bookkeeping.
template <class Real>
void swap_columns(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& vn1,
                  std::vector<Real>& vn2, index_t j1, index_t j2) {
  if (j1 == j2) return;
  blas::swap(a.rows(), a.col_ptr(j1), index_t{1}, a.col_ptr(j2), index_t{1});
  std::swap(jpvt[static_cast<std::size_t>(j1)], jpvt[static_cast<std::size_t>(j2)]);
  std::swap(vn1[static_cast<std::size_t>(j1)], vn1[static_cast<std::size_t>(j2)]);
  std::swap(vn2[static_cast<std::size_t>(j1)], vn2[static_cast<std::size_t>(j2)]);
}

// Downdate the partial norm of column c after step j produced row entry
// r_jc. Returns true if the norm had to be recomputed from scratch
// (rows j+1:m of column c).
template <class Real>
bool downdate_norm(ConstMatrixView<Real> a, index_t j, index_t c,
                   std::vector<Real>& vn1, std::vector<Real>& vn2, Real r_jc) {
  Real& n1 = vn1[static_cast<std::size_t>(c)];
  Real& n2 = vn2[static_cast<std::size_t>(c)];
  if (n1 == Real(0)) return false;
  Real temp = std::abs(r_jc) / n1;
  temp = std::max(Real(0), (Real(1) + temp) * (Real(1) - temp));
  const Real ratio = n1 / n2;
  const Real temp2 = temp * ratio * ratio;
  if (temp2 <= downdate_tolerance<Real>()) {
    // Cancellation: recompute exactly (BLAS-1 — the overhead the paper
    // warns about when triggered frequently).
    const index_t m = a.rows();
    n1 = (j + 1 < m) ? blas::nrm2(m - j - 1, a.col_ptr(c) + j + 1, index_t{1})
                     : Real(0);
    n2 = n1;
    return true;
  }
  n1 *= std::sqrt(temp);
  return false;
}

template <class Real>
void init_pivot_state(ConstMatrixView<Real> a, Permutation& jpvt,
                      std::vector<Real>& vn1, std::vector<Real>& vn2) {
  const index_t n = a.cols();
  jpvt = identity_permutation(n);
  vn1.resize(static_cast<std::size_t>(n));
  vn2.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    vn1[static_cast<std::size_t>(j)] =
        blas::nrm2(a.rows(), a.col_ptr(j), index_t{1});
    vn2[static_cast<std::size_t>(j)] = vn1[static_cast<std::size_t>(j)];
  }
}

template <class Real>
index_t argmax_norm(const std::vector<Real>& vn1, index_t from, index_t to) {
  index_t best = from;
  for (index_t c = from + 1; c < to; ++c)
    if (vn1[static_cast<std::size_t>(c)] > vn1[static_cast<std::size_t>(best)])
      best = c;
  return best;
}

}  // namespace

template <class Real>
index_t geqp2(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min({kmax, m, n});
  tau.assign(static_cast<std::size_t>(k), Real(0));

  std::vector<Real> vn1, vn2;
  init_pivot_state(ConstMatrixView<Real>(a), jpvt, vn1, vn2);
  QrcpStats local;

  for (index_t j = 0; j < k; ++j) {
    // Pivot: column with the largest partial norm among j..n.
    swap_columns(a, jpvt, vn1, vn2, j, argmax_norm(vn1, j, n));

    // Householder reflector on the pivot column.
    Real& ajj = a(j, j);
    tau[static_cast<std::size_t>(j)] =
        lapack::larfg(m - j, ajj, a.col_ptr(j) + j + 1, index_t{1});

    // Apply to the whole trailing matrix (BLAS-2: one gemv + one ger).
    if (j + 1 < n && tau[static_cast<std::size_t>(j)] != Real(0)) {
      const Real saved = ajj;
      ajj = Real(1);
      lapack::larf(Side::Left, m - j, a.col_ptr(j) + j, index_t{1},
                   tau[static_cast<std::size_t>(j)],
                   a.block(j, j + 1, m - j, n - j - 1));
      ajj = saved;
      local.flops_blas2 += 4.0 * double(m - j) * double(n - j - 1);
    }

    // Downdate the partial norms of the trailing columns.
    for (index_t c = j + 1; c < n; ++c)
      local.norm_recomputes +=
          downdate_norm(ConstMatrixView<Real>(a), j, c, vn1, vn2, a(j, c));
    local.columns_factored = j + 1;
  }
  if (stats) *stats = local;
  return k;
}

template <class Real>
index_t geqp3(MatrixView<Real> a, Permutation& jpvt, std::vector<Real>& tau,
              index_t kmax, QrcpStats* stats, index_t block_size) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min({kmax, m, n});
  tau.assign(static_cast<std::size_t>(k), Real(0));

  std::vector<Real> vn1, vn2;
  init_pivot_state(ConstMatrixView<Real>(a), jpvt, vn1, vn2);
  QrcpStats local;

  // Auxiliary vector for the F update.
  std::vector<Real> vtv;

  index_t j0 = 0;  // first column of the current panel
  while (j0 < k) {
    const index_t nb = std::min(block_size, k - j0);
    const index_t ncols = n - j0;  // trailing width including panel
    // F accumulates τ·(trailing-columnsᵀ·v) rows; F is ncols×nb.
    Matrix<Real> f(ncols, nb);
    index_t jb = 0;        // columns factored in this panel
    bool abort_panel = false;

    for (index_t jj = 0; jj < nb && !abort_panel; ++jj) {
      const index_t j = j0 + jj;  // global column index

      // Pivot selection over the not-yet-factored columns. A swap also
      // permutes the corresponding rows of F.
      const index_t piv = argmax_norm(vn1, j, n);
      if (piv != j) {
        swap_columns(a, jpvt, vn1, vn2, j, piv);
        blas::swap(jj, f.data() + (j - j0), f.ld(), f.data() + (piv - j0),
                   f.ld());
      }

      // Bring the pivot column up to date w.r.t. the panel's previous
      // reflectors. Rows j0..j were already refreshed by the per-step
      // row updates, so only rows j:m need the gemv:
      // a_j(j:m) −= V(j:m, 0:jj)·F(j−j0, 0:jj)ᵀ.
      if (jj > 0) {
        blas::gemv(Op::NoTrans, Real(-1),
                   ConstMatrixView<Real>(a.block(j, j0, m - j, jj)),
                   f.data() + (j - j0), f.ld(), Real(1), a.col_ptr(j) + j,
                   index_t{1});
        local.flops_blas2 += 2.0 * double(m - j) * double(jj);
      }

      // Reflector for the updated pivot column.
      Real& ajj = a(j, j);
      tau[static_cast<std::size_t>(j)] =
          lapack::larfg(m - j, ajj, a.col_ptr(j) + j + 1, index_t{1});
      const Real tj = tau[static_cast<std::size_t>(j)];
      const Real saved = ajj;
      ajj = Real(1);

      // F(jj+1:ncols, jj) = τ_j · A(j:m, j+1:n)ᵀ · v_j — the gemv that
      // keeps half of QP3's flops in BLAS-2.
      if (j + 1 < n) {
        blas::gemv(Op::Trans, tj,
                   ConstMatrixView<Real>(a.block(j, j + 1, m - j, n - j - 1)),
                   a.col_ptr(j) + j, index_t{1}, Real(0),
                   f.view().col_ptr(jj) + (j - j0) + 1, index_t{1});
        local.flops_blas2 += 2.0 * double(m - j) * double(n - j - 1);
      }
      f(j - j0, jj) = Real(0);

      // Correct F for the interaction with previous reflectors:
      // F(:, jj) −= τ_j · F(:, 0:jj) · (V(:, 0:jj)ᵀ · v_j).
      if (jj > 0) {
        vtv.assign(static_cast<std::size_t>(jj), Real(0));
        blas::gemv(Op::Trans, -tj,
                   ConstMatrixView<Real>(a.block(j, j0, m - j, jj)),
                   a.col_ptr(j) + j, index_t{1}, Real(0), vtv.data(),
                   index_t{1});
        blas::gemv(Op::NoTrans, Real(1),
                   ConstMatrixView<Real>(f.block(0, 0, ncols, jj)), vtv.data(),
                   index_t{1}, Real(1), f.view().col_ptr(jj), index_t{1});
      }

      // Update row j of the trailing matrix so the downdating sees the
      // true R entries: A(j, j+1:n) −= V(j, 0:jj+1)·F(j+1-col rows)ᵀ.
      if (j + 1 < n) {
        blas::gemv(Op::NoTrans, Real(-1),
                   ConstMatrixView<Real>(f.block(j - j0 + 1, 0, n - j - 1,
                                                 jj + 1)),
                   a.data() + j + j0 * a.ld(), a.ld(), Real(1),
                   a.data() + j + (j + 1) * a.ld(), a.ld());
      }
      ajj = saved;

      // Downdate partial norms; a recompute aborts the panel (LAPACK
      // dlaqps behaviour) so the trailing matrix is refreshed first.
      for (index_t c = j + 1; c < n; ++c) {
        if (downdate_norm(ConstMatrixView<Real>(a), j, c, vn1, vn2, a(j, c))) {
          local.norm_recomputes++;
          abort_panel = true;
        }
      }
      jb = jj + 1;
      local.columns_factored = j + 1;
    }

    // BLAS-3 trailing update with the jb reflectors of this panel.
    // Rows j0..j0+jb of the trailing columns were completed by the
    // per-step row updates; the block below them takes one GEMM:
    // A(j0+jb:m, j0+jb:n) −= V(j0+jb:m, 0:jb)·F(jb:ncols, 0:jb)ᵀ.
    const index_t rest = n - (j0 + jb);
    if (rest > 0 && m > j0 + jb) {
      blas::gemm(Op::NoTrans, Op::Trans, Real(-1),
                 ConstMatrixView<Real>(a.block(j0 + jb, j0, m - j0 - jb, jb)),
                 ConstMatrixView<Real>(f.block(jb, 0, rest, jb)), Real(1),
                 a.block(j0 + jb, j0 + jb, m - j0 - jb, rest));
      local.flops_blas3 += flops::gemm(m - j0 - jb, rest, jb);
    }
    local.panels++;
    j0 += jb;
  }
  if (stats) *stats = local;
  return k;
}

template <class Real>
QrcpFactors<Real> qrcp_truncated(ConstMatrixView<Real> b, index_t k,
                                 index_t block_size) {
  const index_t l = b.rows();
  const index_t n = b.cols();
  if (k > std::min(l, n))
    throw std::invalid_argument("qrcp_truncated: k exceeds min(rows, cols)");

  QrcpFactors<Real> out;
  Matrix<Real> work = Matrix<Real>::copy_of(b);
  std::vector<Real> tau;
  geqp3(work.view(), out.perm, tau, k, &out.stats, block_size);

  // R̂₁ (k×k upper) and R̂₂ (k×(n−k)).
  out.r1.resize(k, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i <= j; ++i) out.r1(i, j) = work(i, j);
  out.r2.resize(k, n - k);
  for (index_t j = k; j < n; ++j)
    for (index_t i = 0; i < k; ++i) out.r2(i, j - k) = work(i, j);

  // Explicit Q̂ (ℓ×k).
  lapack::orgqr(work.view(), tau, k);
  out.q.resize(l, k);
  out.q.view().copy_from(work.block(0, 0, l, k));
  return out;
}

#define RANDLA_INSTANTIATE_QRCP(Real)                                         \
  template index_t geqp2<Real>(MatrixView<Real>, Permutation&,                \
                               std::vector<Real>&, index_t, QrcpStats*);      \
  template index_t geqp3<Real>(MatrixView<Real>, Permutation&,                \
                               std::vector<Real>&, index_t, QrcpStats*,       \
                               index_t);                                      \
  template struct QrcpFactors<Real>;                                          \
  template QrcpFactors<Real> qrcp_truncated<Real>(ConstMatrixView<Real>,      \
                                                  index_t, index_t);

RANDLA_INSTANTIATE_QRCP(float)
RANDLA_INSTANTIATE_QRCP(double)

#undef RANDLA_INSTANTIATE_QRCP

}  // namespace randla::qrcp
